"""Rooted-tree representation shared by all tree-routing schemes.

Cluster trees live on arbitrary subsets of the graph's vertices, so the
tree keeps its own vertex set (original names) with a parent map.  The
helpers here — subtree sizes, heavy children, DFS entry/exit intervals —
are exactly the ingredients of the Thorup–Zwick tree-routing scheme the
paper recaps at the start of Section 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import SchemeError


class RootedTree:
    """A rooted tree over arbitrary integer vertex names.

    Built from a ``{vertex: parent}`` map (root maps to ``None``).
    Children are kept in sorted order, making DFS timestamps — and hence
    the whole routing scheme — deterministic.
    """

    __slots__ = ("root", "_parent", "_children")

    def __init__(self, root: int, parent: Dict[int, Optional[int]]) -> None:
        if parent.get(root, "missing") is not None:
            raise SchemeError(f"root {root} must map to None in parent")
        self.root = root
        self._parent = dict(parent)
        self._children: Dict[int, List[int]] = {v: [] for v in parent}
        for v, p in parent.items():
            if p is None:
                continue
            if p not in self._parent:
                raise SchemeError(
                    f"vertex {v} has parent {p} outside the tree")
            self._children[p].append(v)
        for kids in self._children.values():
            kids.sort()
        self._validate_connected()

    def _validate_connected(self) -> None:
        seen = set()
        stack = [self.root]
        while stack:
            u = stack.pop()
            if u in seen:
                raise SchemeError(f"cycle detected at vertex {u}")
            seen.add(u)
            stack.extend(self._children[u])
        if len(seen) != len(self._parent):
            orphans = set(self._parent) - seen
            raise SchemeError(
                f"vertices {sorted(orphans)[:5]}... unreachable from root")

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._parent)

    def vertices(self) -> Iterator[int]:
        return iter(self._parent)

    def contains(self, v: int) -> bool:
        return v in self._parent

    def parent(self, v: int) -> Optional[int]:
        try:
            return self._parent[v]
        except KeyError:
            raise SchemeError(f"vertex {v} not in tree") from None

    def children(self, v: int) -> List[int]:
        return list(self._children[v])

    def is_leaf(self, v: int) -> bool:
        return not self._children[v]

    def depth_of(self, v: int) -> int:
        depth = 0
        while self._parent[v] is not None:
            v = self._parent[v]  # type: ignore[assignment]
            depth += 1
        return depth

    def height(self) -> int:
        """Maximum depth over all vertices (0 for a singleton)."""
        depths = self.depths()
        return max(depths.values()) if depths else 0

    def depths(self) -> Dict[int, int]:
        """Depth of every vertex, computed in one top-down pass."""
        out = {self.root: 0}
        stack = [self.root]
        while stack:
            u = stack.pop()
            for c in self._children[u]:
                out[c] = out[u] + 1
                stack.append(c)
        return out

    def path_to_root(self, v: int) -> List[int]:
        path = [v]
        while self._parent[path[-1]] is not None:
            path.append(self._parent[path[-1]])  # type: ignore[arg-type]
        return path

    def path_between(self, u: int, v: int) -> List[int]:
        """The unique tree path from ``u`` to ``v`` (through their LCA)."""
        up = self.path_to_root(u)
        vp = self.path_to_root(v)
        ancestors_u = {x: i for i, x in enumerate(up)}
        for j, x in enumerate(vp):
            if x in ancestors_u:
                i = ancestors_u[x]
                return up[:i + 1] + vp[:j][::-1]
        raise SchemeError("vertices share no ancestor (corrupt tree)")

    # ------------------------------------------------------------------
    def subtree_sizes(self) -> Dict[int, int]:
        """Number of vertices in each subtree (bottom-up, iterative)."""
        sizes = {v: 1 for v in self._parent}
        for u in reversed(self._dfs_order()):
            p = self._parent[u]
            if p is not None:
                sizes[p] += sizes[u]
        return sizes

    def heavy_children(self) -> Dict[int, Optional[int]]:
        """The child with the largest subtree, per vertex (None at leaves).

        Ties break toward the smaller vertex name (children are sorted and
        ``>`` keeps the first maximum).
        """
        sizes = self.subtree_sizes()
        heavy: Dict[int, Optional[int]] = {}
        for u in self._parent:
            best, best_size = None, 0
            for c in self._children[u]:
                if sizes[c] > best_size:
                    best, best_size = c, sizes[c]
            heavy[u] = best
        return heavy

    def dfs_intervals(self) -> Tuple[Dict[int, int], Dict[int, int]]:
        """DFS entry time ``a_u`` and last-descendant time ``b_u``.

        ``v`` is in the subtree of ``x`` iff ``a_x <= a_v <= b_x``.
        """
        order = self._dfs_order()
        entry = {v: i for i, v in enumerate(order)}
        exit_time = dict(entry)
        for u in reversed(order):
            p = self._parent[u]
            if p is not None and exit_time[u] > exit_time[p]:
                exit_time[p] = exit_time[u]
        return entry, exit_time

    def dfs_order(self) -> List[int]:
        """Vertices in the (deterministic) DFS pre-order."""
        return self._dfs_order()

    def _dfs_order(self) -> List[int]:
        order = []
        stack = [self.root]
        while stack:
            u = stack.pop()
            order.append(u)
            # reversed so the smallest child is visited first
            stack.extend(reversed(self._children[u]))
        return order

    def __repr__(self) -> str:
        return f"RootedTree(root={self.root}, size={self.size})"


def tree_from_parent_lists(root: int,
                           parent_of: Dict[int, Optional[int]]
                           ) -> RootedTree:
    """Convenience alias with a descriptive name."""
    return RootedTree(root, parent_of)


def tree_distance(tree: RootedTree, weights, u: int, v: int) -> float:
    """Length of the unique tree path under a ``weights(a, b)`` callable."""
    path = tree.path_between(u, v)
    total = 0.0
    for a, b in zip(path, path[1:]):
        total += weights(a, b)
    return total
