"""Rooted trees and Thorup–Zwick interval tree routing (shared by the
centralized baseline and the paper's distributed tree-routing scheme)."""

from .rooted import RootedTree, tree_distance, tree_from_parent_lists
from .interval_routing import (
    TreeLabel,
    TreeRoutingScheme,
    TreeTable,
    build_tree_routing,
    interval_next_hop,
)

__all__ = [
    "RootedTree",
    "tree_distance",
    "tree_from_parent_lists",
    "TreeLabel",
    "TreeRoutingScheme",
    "TreeTable",
    "build_tree_routing",
    "interval_next_hop",
]
