"""Centralized Thorup–Zwick tree routing (Section 6's recap).

Exact (stretch-1) routing on a tree with ``O(1)``-word tables and
``O(log n)``-word labels:

* every vertex stores its parent, its *heavy child* (largest subtree) and
  its DFS interval ``(a_u, b_u)``;
* the label of ``v`` is ``a_v`` plus, for every vertex ``w`` on the
  root→v path whose heavy child is *not* on the path, the pair
  ``(w, port(w → next))`` — at most ``ceil(log2 n)`` pairs, because
  leaving the heavy child halves the subtree size;
* an intermediate ``x`` forwards: done if ``a_x = a_v``; to its parent if
  ``a_v ∉ [a_x, b_x]``; otherwise to the label's entry for ``x`` if
  present, else to its heavy child.

This is both the [TZ01] baseline's tree router and the *local* router
inside each depth-bounded subtree of the paper's distributed scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..exceptions import RoutingLoopError, SchemeError
from .rooted import RootedTree

#: port_of(u, v) -> local port number at u for the edge to v.
PortFunction = Callable[[int, int], int]


@dataclass(frozen=True)
class TreeTable:
    """Per-vertex routing table: O(1) words."""

    vertex: int
    parent: Optional[int]
    parent_port: Optional[int]
    heavy_child: Optional[int]
    heavy_child_port: Optional[int]
    entry: int      # a_u
    exit: int       # b_u

    @property
    def words(self) -> int:
        """Table size in RAM words (names + ports + two timestamps)."""
        return 6


@dataclass(frozen=True)
class TreeLabel:
    """Per-vertex label: ``a_v`` plus the non-heavy path edges."""

    vertex: int
    entry: int
    path_edges: Tuple[Tuple[int, int, int], ...]  # (w, child, port at w)

    @property
    def words(self) -> int:
        return 2 + 3 * len(self.path_edges)

    def port_from(self, w: int) -> Optional[Tuple[int, int]]:
        """The (child, port) this label dictates at ``w``, if any."""
        for vertex, child, port in self.path_edges:
            if vertex == w:
                return child, port
        return None


def interval_next_hop(table: TreeTable, label: TreeLabel) -> Optional[int]:
    """One forwarding decision of the TZ tree protocol.

    Returns the neighbor to forward to, or ``None`` on arrival.  Uses
    only the current vertex's table and the packet's label — this is the
    whole local decision rule, shared by the centralized scheme and the
    local stage of the distributed Section-6 scheme.
    """
    if table.entry == label.entry:
        return None
    if not table.entry <= label.entry <= table.exit:
        if table.parent is None:
            raise SchemeError(
                f"label {label.vertex} escapes the tree at its root")
        return table.parent
    dictated = label.port_from(table.vertex)
    if dictated is not None:
        return dictated[0]
    if table.heavy_child is None:
        raise SchemeError(
            f"routing stuck at leaf {table.vertex} for label "
            f"{label.vertex}")
    return table.heavy_child


class TreeRoutingScheme:
    """Tables + labels for one tree, with a step-by-step router."""

    def __init__(self, tree: RootedTree,
                 tables: Dict[int, TreeTable],
                 labels: Dict[int, TreeLabel]) -> None:
        self.tree = tree
        self.tables = tables
        self.labels = labels

    def table_of(self, v: int) -> TreeTable:
        return self.tables[v]

    def label_of(self, v: int) -> TreeLabel:
        return self.labels[v]

    def next_hop(self, x: int, label: TreeLabel) -> Optional[int]:
        """The neighbor ``x`` forwards to; ``None`` when ``x`` is the
        destination.  Uses only ``x``'s table and the packet label."""
        return interval_next_hop(self.tables[x], label)

    def route(self, source: int, target: int,
              max_hops: Optional[int] = None) -> List[int]:
        """Full path from ``source`` to ``target`` (inclusive)."""
        label = self.labels[target]
        if max_hops is None:
            max_hops = 2 * self.tree.size + 2
        path = [source]
        current = source
        for _ in range(max_hops):
            nxt = self.next_hop(current, label)
            if nxt is None:
                return path
            path.append(nxt)
            current = nxt
        raise RoutingLoopError(
            f"no arrival after {max_hops} hops routing "
            f"{source} -> {target}")

    def max_table_words(self) -> int:
        return max(t.words for t in self.tables.values())

    def max_label_words(self) -> int:
        return max(l.words for l in self.labels.values())


def build_tree_routing(tree: RootedTree,
                       port_of: Optional[PortFunction] = None
                       ) -> TreeRoutingScheme:
    """Construct the TZ scheme for ``tree``.

    ``port_of`` supplies real port numbers when the tree is a subgraph of
    a port-numbered network; the default numbers ports by neighbor name,
    which is what "port numbers may be assigned by the routing process"
    means in the paper.
    """
    if port_of is None:
        def port_of(u: int, v: int) -> int:  # noqa: ANN001
            return v

    heavy = tree.heavy_children()
    entry, exit_time = tree.dfs_intervals()

    tables: Dict[int, TreeTable] = {}
    for u in tree.vertices():
        p = tree.parent(u)
        h = heavy[u]
        tables[u] = TreeTable(
            vertex=u,
            parent=p,
            parent_port=None if p is None else port_of(u, p),
            heavy_child=h,
            heavy_child_port=None if h is None else port_of(u, h),
            entry=entry[u],
            exit=exit_time[u],
        )

    # Labels are assembled top-down in pre-order: a vertex inherits its
    # parent's (root ... parent) non-heavy edge tuple, extended only
    # when the step into it leaves the heavy path.  One pass, and heavy
    # descendants share their ancestor's tuple outright — versus the
    # per-vertex root walk, which is quadratic in the tree height.
    labels: Dict[int, TreeLabel] = {}
    edges_of: Dict[int, Tuple[Tuple[int, int, int], ...]] = {}
    for v in tree.dfs_order():
        p = tree.parent(v)
        if p is None:
            edges: Tuple[Tuple[int, int, int], ...] = ()
        else:
            edges = edges_of[p]
            if heavy[p] != v:
                edges = edges + ((p, v, port_of(p, v)),)
        edges_of[v] = edges
        labels[v] = TreeLabel(vertex=v, entry=entry[v], path_edges=edges)

    return TreeRoutingScheme(tree, tables, labels)
