"""Round / message accounting for distributed executions.

Every construction phase in the library reports its cost through a
:class:`CostLedger`.  Costs come from two kinds of executions:

* **simulated** — the generic round engine ran node programs and counted
  actual rounds and delivered words;
* **scheduled** — a round-by-round phase (e.g. a multi-source Bellman–Ford
  with congestion) measured, per iteration, the maximum number of words any
  single edge had to carry, and charged ``ceil(words / capacity)`` rounds
  for that iteration — exactly the pipelining bound the paper uses.

The ledger keeps a named breakdown so benchmarks can report per-phase
round counts next to the paper's per-phase bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple


@dataclass
class PhaseCost:
    """Cost of one named construction phase.

    ``seconds`` is host wall-clock for the phase's dominant kernel —
    purely observational (benchmarks report it), never part of the
    simulated-cost model and never compared by the differential
    harnesses.
    """

    name: str
    rounds: int
    messages: int = 0
    words: int = 0
    seconds: float = 0.0

    def __add__(self, other: "PhaseCost") -> "PhaseCost":
        return PhaseCost(self.name, self.rounds + other.rounds,
                         self.messages + other.messages,
                         self.words + other.words,
                         self.seconds + other.seconds)


class CostLedger:
    """Accumulates :class:`PhaseCost` records for one construction run."""

    def __init__(self) -> None:
        self._phases: List[PhaseCost] = []

    def add(self, name: str, rounds: int, messages: int = 0,
            words: int = 0, seconds: float = 0.0) -> None:
        """Record a phase; zero-round phases are kept for the breakdown."""
        if rounds < 0 or messages < 0 or words < 0 or seconds < 0:
            raise ValueError("phase costs must be non-negative")
        self._phases.append(PhaseCost(name, rounds, messages, words,
                                      seconds))

    def merge(self, other: "CostLedger", prefix: str = "") -> None:
        """Append all phases of ``other``, optionally prefixing names."""
        for phase in other._phases:
            self._phases.append(PhaseCost(prefix + phase.name, phase.rounds,
                                          phase.messages, phase.words,
                                          phase.seconds))

    @property
    def total_rounds(self) -> int:
        return sum(p.rounds for p in self._phases)

    @property
    def total_messages(self) -> int:
        return sum(p.messages for p in self._phases)

    @property
    def total_words(self) -> int:
        return sum(p.words for p in self._phases)

    def phases(self) -> List[PhaseCost]:
        return list(self._phases)

    def breakdown(self) -> Dict[str, int]:
        """Phase name -> rounds, merging repeated names."""
        out: Dict[str, int] = {}
        for phase in self._phases:
            out[phase.name] = out.get(phase.name, 0) + phase.rounds
        return out

    def seconds_breakdown(self) -> Dict[str, float]:
        """Phase name -> wall seconds, merging repeated names.

        Only phases whose producers pass ``seconds=`` contribute;
        benchmarks group these by prefix for per-phase build timing.
        """
        out: Dict[str, float] = {}
        for phase in self._phases:
            out[phase.name] = out.get(phase.name, 0.0) + phase.seconds
        return out

    def publish(self, registry, prefix: str = "repro_build") -> None:
        """Export this ledger's totals into a telemetry registry.

        One counter family per cost dimension, labeled by phase name —
        ``<prefix>_rounds_total{phase=...}``, ``..._messages_total``,
        ``..._words_total``, ``..._seconds_total`` — so a scrape shows
        exactly the per-phase accounting :meth:`breakdown` and
        :meth:`seconds_breakdown` report.  Counters only accumulate:
        publishing two ledgers (e.g. successive rebuilds) into one
        registry sums them, which is the fleet-facing view; per-run
        numbers stay on the ledger itself.
        """
        rounds = registry.counter(
            f"{prefix}_rounds_total",
            "CONGEST rounds per construction phase",
            labelnames=("phase",))
        messages = registry.counter(
            f"{prefix}_messages_total",
            "CONGEST messages per construction phase",
            labelnames=("phase",))
        words = registry.counter(
            f"{prefix}_words_total",
            "CONGEST words per construction phase",
            labelnames=("phase",))
        seconds = registry.counter(
            f"{prefix}_seconds_total",
            "host wall-clock seconds per construction phase",
            labelnames=("phase",))
        by_phase: Dict[str, PhaseCost] = {}
        for phase in self._phases:
            merged = by_phase.get(phase.name)
            by_phase[phase.name] = (phase if merged is None
                                    else merged + phase)
        for name, cost in by_phase.items():
            rounds.labels(phase=name).inc(cost.rounds)
            messages.labels(phase=name).inc(cost.messages)
            words.labels(phase=name).inc(cost.words)
            seconds.labels(phase=name).inc(cost.seconds)

    def __iter__(self) -> Iterator[PhaseCost]:
        return iter(self._phases)

    def __repr__(self) -> str:
        return (f"CostLedger(rounds={self.total_rounds}, "
                f"phases={len(self._phases)})")

    def format_table(self) -> str:
        """Human-readable breakdown table (for examples / benchmarks)."""
        lines = [f"{'phase':<42} {'rounds':>10} {'messages':>10}"]
        lines.append("-" * 64)
        for phase in self._phases:
            lines.append(
                f"{phase.name:<42} {phase.rounds:>10} {phase.messages:>10}")
        lines.append("-" * 64)
        lines.append(f"{'TOTAL':<42} {self.total_rounds:>10} "
                     f"{self.total_messages:>10}")
        return "\n".join(lines)


def pipelined_rounds(total_words: int, capacity_words: int,
                     depth: int) -> int:
    """Rounds for a pipelined broadcast/convergecast (Lemma 1).

    Shipping ``M`` words over a BFS tree of depth ``depth`` with per-edge
    capacity ``c`` takes ``ceil(M / c) + depth`` rounds.
    """
    if capacity_words < 1:
        raise ValueError("capacity_words must be >= 1")
    waves = -(-total_words // capacity_words) if total_words > 0 else 0
    return waves + depth


def congestion_rounds(per_iteration_edge_words: List[int],
                      capacity_words: int) -> int:
    """Rounds for an iterated exploration with measured congestion.

    ``per_iteration_edge_words[i]`` is the maximum number of words any
    single edge direction must carry during iteration ``i``.  Each
    iteration is scheduled in ``max(1, ceil(words / capacity))`` rounds.
    """
    if capacity_words < 1:
        raise ValueError("capacity_words must be >= 1")
    total = 0
    for words in per_iteration_edge_words:
        total += max(1, -(-words // capacity_words))
    return total
