"""Engine protocol and backend registry for the CONGEST round core.

The simulator exists in two interchangeable implementations:

* ``reference`` — :class:`~repro.congest.simulator.Simulator`, the
  original dict-of-deques engine.  Simple, obviously correct, O(m) per
  round.  Kept verbatim as the semantic oracle.
* ``fast`` — :class:`~repro.congest.fast_engine.FastSimulator`, a
  batched flat-array engine (integer-indexed links, incremental queue
  accounting, active-link frontier).  The default.

Both produce *bit-identical* :class:`~repro.congest.simulator.RunReport`
fields for any program — enforced by
``tests/congest/test_engine_equivalence.py``.  New backends register via
:func:`register_engine`; callers obtain one with :func:`make_engine`,
which resolves, in order: the explicit ``engine`` argument, the
network's preferred backend (``Network(graph, engine=...)``), then
:data:`DEFAULT_ENGINE`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Protocol, Tuple

from ..exceptions import SimulationError
from .messages import DEFAULT_CAPACITY_WORDS
from .network import Network
from .node import NodeProgram
from .simulator import RunReport, Simulator


class Engine(Protocol):
    """What every CONGEST execution backend must provide."""

    @property
    def network(self) -> Network: ...

    @property
    def capacity_words(self) -> int: ...

    def run(self, program: NodeProgram,
            max_rounds: int = 1_000_000) -> RunReport: ...


#: name -> factory(network, capacity_words) building an engine.
EngineFactory = Callable[[Network, int], Engine]

#: The backend used when neither the caller nor the network picks one.
DEFAULT_ENGINE = "fast"

_REGISTRY: Dict[str, EngineFactory] = {}


def register_engine(name: str, factory: EngineFactory) -> None:
    """Register (or replace) a backend under ``name``."""
    _REGISTRY[name] = factory


def available_engines() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_engine_name(network: Network,
                        engine: Optional[str] = None) -> str:
    """Resolve which backend to use for ``network``."""
    name = engine or network.engine or DEFAULT_ENGINE
    if name not in _REGISTRY:
        raise SimulationError(
            f"unknown engine backend {name!r}; "
            f"available: {', '.join(available_engines())}")
    return name


def make_engine(network: Network,
                capacity_words: int = DEFAULT_CAPACITY_WORDS,
                engine: Optional[str] = None) -> Engine:
    """Build the selected execution backend for ``network``.

    ``engine`` overrides the network's preference; ``None`` falls back
    to ``network.engine`` and then :data:`DEFAULT_ENGINE`.
    """
    return _REGISTRY[resolve_engine_name(network, engine)](
        network, capacity_words)


def _make_reference(network: Network, capacity_words: int) -> Engine:
    return Simulator(network, capacity_words=capacity_words)


register_engine("reference", _make_reference)

# The fast backend registers itself on import; importing it here keeps
# the registry complete whenever anything touches the engine layer.
from . import fast_engine as _fast_engine  # noqa: E402,F401  (registration)
