"""Node-program API for the CONGEST simulator.

A distributed algorithm is written as a :class:`NodeProgram`: per-node
code that, every synchronous round, consumes the messages delivered on its
incident links and emits messages for the next round.  Programs know only
local information — their id, their incident edges (neighbor name, port,
weight) and whatever state they accumulate — exactly as the model demands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from .messages import Message
from .network import Network


@dataclass
class NodeContext:
    """The local view a node program gets.

    Attributes
    ----------
    node:
        This node's name.
    neighbors:
        Neighbor names in port order.
    weights:
        ``weights[i]`` is the weight of the link to ``neighbors[i]``.
    state:
        Mutable per-node scratch dictionary, private to the node.
    """

    node: int
    neighbors: List[int]
    weights: List[int]
    state: Dict[str, Any] = field(default_factory=dict)

    def weight_to(self, neighbor: int) -> int:
        """Weight of the link to ``neighbor`` (must be adjacent)."""
        return self.weights[self.neighbors.index(neighbor)]


#: A message addressed to a neighbor: (neighbor_name, message).
Outgoing = Tuple[int, Message]


class NodeProgram:
    """Base class for per-node CONGEST programs.

    Subclasses override :meth:`initialize` and :meth:`on_round`; both
    return the messages to enqueue on outgoing links.  The simulator
    guarantees messages are only delivered between neighbors and enforces
    link capacity — a program never sees the network globally.
    """

    def initialize(self, ctx: NodeContext) -> List[Outgoing]:
        """Called once before round 1; seed state, optionally send."""
        return []

    def on_round(self, ctx: NodeContext, inbox: List[Tuple[int, Message]]
                 ) -> List[Outgoing]:
        """Called every round with ``(sender, message)`` pairs delivered
        this round.  Return messages to enqueue."""
        raise NotImplementedError

    def finalize(self, ctx: NodeContext) -> None:
        """Called once after quiescence; tidy up state if needed."""


def make_contexts(network: Network) -> List[NodeContext]:
    """Build the per-node contexts for a network."""
    contexts = []
    for u in range(network.num_nodes):
        neighbors = network.neighbors(u)
        weights = [network.weight(u, v) for v in neighbors]
        contexts.append(NodeContext(node=u, neighbors=neighbors,
                                    weights=weights))
    return contexts
