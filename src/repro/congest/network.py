"""Network wrapper: the graph as seen by distributed node programs.

Adds the *port numbering* the routing model needs: each node refers to its
incident edges by local port numbers ``0 .. deg-1`` (sorted by neighbor
name, which is deterministic).  The paper assumes port numbers may be
assigned by the routing process; we expose both directions of the mapping.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..exceptions import GraphError
from ..graphs.weighted_graph import WeightedGraph


class Network:
    """A :class:`WeightedGraph` plus port numbering and link metadata.

    ``engine`` optionally names the preferred execution backend
    (``"fast"`` or ``"reference"``, see :mod:`repro.congest.engine`) for
    simulations run over this network; ``None`` defers to the caller
    and ultimately the package default.
    """

    __slots__ = ("_graph", "_ports", "_port_of", "_engine")

    def __init__(self, graph: WeightedGraph,
                 engine: Optional[str] = None) -> None:
        graph.require_connected()
        self._graph = graph
        self._engine = engine
        self._ports: List[List[int]] = []
        self._port_of: List[Dict[int, int]] = []
        for u in graph.vertices():
            neighbors = sorted(graph.neighbors(u))
            self._ports.append(neighbors)
            self._port_of.append({v: p for p, v in enumerate(neighbors)})

    @property
    def graph(self) -> WeightedGraph:
        return self._graph

    @property
    def engine(self) -> Optional[str]:
        """Preferred execution backend name, or ``None`` for default."""
        return self._engine

    @property
    def num_nodes(self) -> int:
        return self._graph.num_vertices

    @property
    def num_links(self) -> int:
        return self._graph.num_edges

    def neighbors(self, u: int) -> List[int]:
        """Neighbors of ``u`` in port order."""
        return list(self._ports[u])

    def degree(self, u: int) -> int:
        return len(self._ports[u])

    def weight(self, u: int, v: int) -> int:
        return self._graph.weight(u, v)

    def port_of(self, u: int, v: int) -> int:
        """The port at ``u`` whose link leads to neighbor ``v``."""
        try:
            return self._port_of[u][v]
        except KeyError:
            raise GraphError(f"{v} is not a neighbor of {u}") from None

    def neighbor_at(self, u: int, port: int) -> int:
        """The neighbor of ``u`` reached through ``port``."""
        try:
            return self._ports[u][port]
        except IndexError:
            raise GraphError(
                f"node {u} has no port {port} "
                f"(degree {len(self._ports[u])})") from None

    def links(self) -> List[Tuple[int, int]]:
        """All directed links ``(u, v)``."""
        out = []
        for u in range(self.num_nodes):
            for v in self._ports[u]:
                out.append((u, v))
        return out

    def __repr__(self) -> str:
        return f"Network(nodes={self.num_nodes}, links={self.num_links})"
