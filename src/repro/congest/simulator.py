"""Synchronous round engine for the CONGEST model.

Executes a :class:`NodeProgram` on every node of a :class:`Network`:

* rounds are synchronous; every link carries at most ``capacity_words``
  words per direction per round (excess messages stay queued, FIFO);
* a single message larger than the capacity is rejected — programs must
  split big records themselves;
* execution stops at *quiescence* (no queued or freshly emitted messages)
  or when ``max_rounds`` is hit, whichever is first.

The engine reports measured rounds, delivered messages/words and the
maximum per-link queue ever seen (the congestion the paper's analysis
bounds via cluster-overlap arguments).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Tuple

from ..exceptions import SimulationError
from .messages import DEFAULT_CAPACITY_WORDS, Message, check_fits_capacity
from .network import Network
from .node import NodeContext, NodeProgram, make_contexts


@dataclass
class RunReport:
    """Outcome of one simulated execution."""

    rounds: int
    delivered_messages: int
    delivered_words: int
    max_link_queue_words: int
    quiescent: bool
    contexts: List[NodeContext]

    def state_of(self, node: int) -> Dict:
        """Final state dictionary of ``node``."""
        return self.contexts[node].state


class Simulator:
    """Runs one node program over all nodes of a network."""

    def __init__(self, network: Network,
                 capacity_words: int = DEFAULT_CAPACITY_WORDS) -> None:
        if capacity_words < 1:
            raise SimulationError(
                f"capacity_words must be >= 1, got {capacity_words}")
        self._network = network
        self._capacity = capacity_words

    @property
    def network(self) -> Network:
        return self._network

    @property
    def capacity_words(self) -> int:
        return self._capacity

    def run(self, program: NodeProgram, max_rounds: int = 1_000_000
            ) -> RunReport:
        """Execute ``program`` until quiescence or ``max_rounds``."""
        network = self._network
        contexts = make_contexts(network)
        queues: Dict[Tuple[int, int], Deque[Message]] = {
            link: deque() for link in network.links()}

        def enqueue(sender: int, outgoing) -> None:
            for target, message in outgoing:
                if (sender, target) not in queues:
                    raise SimulationError(
                        f"node {sender} tried to message non-neighbor "
                        f"{target}")
                check_fits_capacity(message, self._capacity)
                queues[(sender, target)].append(message)

        for u in range(network.num_nodes):
            enqueue(u, program.initialize(contexts[u]))

        rounds = 0
        delivered_messages = 0
        delivered_words = 0
        max_queue_words = 0
        quiescent = not any(queues.values())

        while not quiescent and rounds < max_rounds:
            rounds += 1
            inboxes: Dict[int, List[Tuple[int, Message]]] = {}
            for (sender, target), queue in queues.items():
                budget = self._capacity
                while queue and queue[0].words <= budget:
                    message = queue.popleft()
                    budget -= message.words
                    inboxes.setdefault(target, []).append((sender, message))
                    delivered_messages += 1
                    delivered_words += message.words
            emitted_any = False
            for target, inbox in inboxes.items():
                outgoing = program.on_round(contexts[target], inbox)
                if outgoing:
                    emitted_any = True
                    enqueue(target, outgoing)
            for queue in queues.values():
                pending = sum(m.words for m in queue)
                if pending > max_queue_words:
                    max_queue_words = pending
            quiescent = not emitted_any and not any(queues.values())

        for u in range(network.num_nodes):
            program.finalize(contexts[u])

        return RunReport(rounds=rounds,
                         delivered_messages=delivered_messages,
                         delivered_words=delivered_words,
                         max_link_queue_words=max_queue_words,
                         quiescent=quiescent,
                         contexts=contexts)
