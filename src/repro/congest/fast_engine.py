"""Batched flat-array CONGEST engine (the ``fast`` backend).

Semantically identical to :class:`~repro.congest.simulator.Simulator`
(the ``reference`` backend) but engineered for scale:

* **Flat integer-indexed links.**  Directed links get dense ids in the
  reference scan order (sender ascending, port order); per-link state is
  parallel arrays (message list + head cursor + pending-word counter),
  not a dict of deques.
* **Vectorized capacity accounting.**  Pending word totals live in one
  int64 array (numpy when available, ``array('q')`` fallback).  Each
  round, links whose whole backlog fits the capacity are classified in
  one vectorized compare and drained wholesale; only genuinely congested
  links walk messages one by one.  The per-round max-queue statistic is
  a single vectorized gather/max over the links that changed.
* **Active-link frontier.**  Only links with queued messages are
  visited, so a round costs O(active + delivered), not O(m), and
  quiescence detection is O(1) instead of an all-queue scan.
* **Bucketed inbox assembly.**  Delivered messages drop into
  preallocated per-node buckets in one pass; no ``setdefault`` churn.

Bit-for-bit equivalence of every :class:`RunReport` field (rounds,
delivered messages/words, max queue, quiescence, final node states) with
the reference engine is enforced by
``tests/congest/test_engine_equivalence.py``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..exceptions import SimulationError
from .messages import DEFAULT_CAPACITY_WORDS, Message, check_fits_capacity
from .network import Network
from .node import NodeProgram, make_contexts
from .simulator import RunReport

try:  # vectorized accounting when numpy is present
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via _ArrayOps tests
    _np = None

#: Below this many active links the vectorized path costs more than it
#: saves; fall back to scalar compares.
_VECTOR_THRESHOLD = 8

#: Compact a queue's consumed prefix once the head cursor passes this.
_COMPACT_THRESHOLD = 64


class _NumpyOps:
    """int64 pending-words vector backed by numpy."""

    def __init__(self, size: int) -> None:
        self.words = _np.zeros(size, dtype=_np.int64)

    def drain_mask(self, order: List[int], capacity: int) -> List[bool]:
        if len(order) >= _VECTOR_THRESHOLD:
            idx = _np.fromiter(order, dtype=_np.int64, count=len(order))
            return (self.words[idx] <= capacity).tolist()
        words = self.words
        return [words[e] <= capacity for e in order]

    def max_over(self, links: List[int]) -> int:
        if len(links) >= _VECTOR_THRESHOLD:
            idx = _np.fromiter(links, dtype=_np.int64, count=len(links))
            return int(self.words[idx].max())
        words = self.words
        return max(int(words[e]) for e in links)


class _ArrayOps:
    """Stdlib ``array('q')`` fallback with the same interface."""

    def __init__(self, size: int) -> None:
        from array import array
        self.words = array("q", bytes(8 * size))

    def drain_mask(self, order: List[int], capacity: int) -> List[bool]:
        words = self.words
        return [words[e] <= capacity for e in order]

    def max_over(self, links: List[int]) -> int:
        words = self.words
        return max(words[e] for e in links)


class FastSimulator:
    """Flat-array, frontier-driven implementation of the round engine.

    Drop-in replacement for :class:`Simulator`: same constructor, same
    :meth:`run` contract, same :class:`RunReport`.
    """

    def __init__(self, network: Network,
                 capacity_words: int = DEFAULT_CAPACITY_WORDS) -> None:
        if capacity_words < 1:
            raise SimulationError(
                f"capacity_words must be >= 1, got {capacity_words}")
        self._network = network
        self._capacity = capacity_words
        # Dense directed-link ids in the reference engine's scan order.
        sender: List[int] = []
        target: List[int] = []
        link_of: List[Dict[int, int]] = []
        for u in range(network.num_nodes):
            ids: Dict[int, int] = {}
            for v in network.neighbors(u):
                ids[v] = len(sender)
                sender.append(u)
                target.append(v)
            link_of.append(ids)
        self._link_sender = sender
        self._link_target = target
        self._link_of = link_of

    @property
    def network(self) -> Network:
        return self._network

    @property
    def capacity_words(self) -> int:
        return self._capacity

    def run(self, program: NodeProgram, max_rounds: int = 1_000_000
            ) -> RunReport:
        """Execute ``program`` until quiescence or ``max_rounds``."""
        network = self._network
        capacity = self._capacity
        n = network.num_nodes
        num_links = len(self._link_sender)
        link_sender = self._link_sender
        link_target = self._link_target
        link_of = self._link_of

        contexts = make_contexts(network)
        queues: List[List[Message]] = [[] for _ in range(num_links)]
        heads = [0] * num_links
        ops = (_NumpyOps if _np is not None else _ArrayOps)(num_links)
        qwords = ops.words
        active: set = set()
        inboxes: List[List[Tuple[int, Message]]] = [[] for _ in range(n)]
        touched_links: List[int] = []   # links whose backlog changed

        def enqueue(sender: int, outgoing) -> None:
            ids = link_of[sender]
            for tgt, message in outgoing:
                e = ids.get(tgt)
                if e is None:
                    raise SimulationError(
                        f"node {sender} tried to message non-neighbor "
                        f"{tgt}")
                check_fits_capacity(message, capacity)
                queues[e].append(message)
                qwords[e] += message.words
                active.add(e)
                touched_links.append(e)

        for u in range(n):
            enqueue(u, program.initialize(contexts[u]))

        rounds = 0
        delivered_messages = 0
        delivered_words = 0
        max_queue_words = 0
        quiescent = not active

        while not quiescent and rounds < max_rounds:
            rounds += 1
            touched_links.clear()
            # --- delivery: one bucketed pass over the frontier -------
            order = sorted(active)
            drain = ops.drain_mask(order, capacity)
            touched_targets: List[int] = []
            for pos, e in enumerate(order):
                queue = queues[e]
                head = heads[e]
                bucket = inboxes[link_target[e]]
                if not bucket:
                    touched_targets.append(link_target[e])
                snd = link_sender[e]
                if drain[pos]:
                    # whole backlog fits this round's budget
                    for i in range(head, len(queue)):
                        bucket.append((snd, queue[i]))
                    delivered_messages += len(queue) - head
                    delivered_words += int(qwords[e])
                    queues[e] = []
                    heads[e] = 0
                    qwords[e] = 0
                    active.discard(e)
                else:
                    budget = capacity
                    while head < len(queue) and \
                            queue[head].words <= budget:
                        message = queue[head]
                        head += 1
                        budget -= message.words
                        bucket.append((snd, message))
                        delivered_messages += 1
                        delivered_words += message.words
                    qwords[e] -= capacity - budget
                    if head > _COMPACT_THRESHOLD and 2 * head >= len(queue):
                        del queue[:head]
                        head = 0
                    heads[e] = head
                    touched_links.append(e)   # leftover backlog
            # --- node programs over the bucketed inboxes -------------
            emitted_any = False
            for tgt in touched_targets:
                outgoing = program.on_round(contexts[tgt], inboxes[tgt])
                if outgoing:
                    emitted_any = True
                    enqueue(tgt, outgoing)
                inboxes[tgt] = []
            # --- congestion statistic over changed links only --------
            if touched_links:
                pending = ops.max_over(touched_links)
                if pending > max_queue_words:
                    max_queue_words = int(pending)
            quiescent = not emitted_any and not active

        for u in range(n):
            program.finalize(contexts[u])

        return RunReport(rounds=rounds,
                         delivered_messages=delivered_messages,
                         delivered_words=delivered_words,
                         max_link_queue_words=max_queue_words,
                         quiescent=quiescent,
                         contexts=contexts)


def _make_fast(network: Network, capacity_words: int) -> FastSimulator:
    return FastSimulator(network, capacity_words=capacity_words)


# Register with the backend registry (imported lazily to avoid a cycle).
from .engine import register_engine  # noqa: E402

register_engine("fast", _make_fast)
