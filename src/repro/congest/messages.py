"""Messages for the CONGEST simulator.

In the CONGEST model a message carries ``O(log n)`` bits, i.e. a constant
number of RAM words (a vertex name, a distance, a port...).  We represent a
message as an immutable payload plus an explicit word count; the simulator
enforces per-edge per-round word capacity against these counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Tuple

from ..exceptions import CapacityError

#: Default link capacity: words deliverable per edge direction per round.
#: The model allows one O(1)-word message per neighbor per round; primitives
#: that send composite records charge multiple rounds automatically.
DEFAULT_CAPACITY_WORDS = 2


@dataclass(frozen=True, slots=True)
class Message:
    """One CONGEST message.

    Parameters
    ----------
    kind:
        Short tag naming the protocol step (e.g. ``"bfs"``, ``"dist"``).
    payload:
        Immutable tuple of scalars the message carries.
    words:
        RAM-word size charged against link capacity.  Defaults to the
        payload length (each scalar is one word) with a minimum of 1.
    """

    kind: str
    payload: Tuple[Any, ...] = ()
    words: int = field(default=0)

    def __post_init__(self) -> None:
        if self.words == 0:
            object.__setattr__(self, "words", max(1, len(self.payload)))
        if self.words < 1:
            raise CapacityError(f"message words must be >= 1, got {self.words}")


def check_fits_capacity(message: Message, capacity_words: int) -> None:
    """Raise :class:`CapacityError` if one message alone exceeds capacity.

    A single CONGEST message must fit in one round; algorithms needing to
    ship larger records must split them (the primitives in this package do).
    """
    if message.words > capacity_words:
        raise CapacityError(
            f"message {message.kind!r} needs {message.words} words but link "
            f"capacity is {capacity_words} words/round; split the record")
