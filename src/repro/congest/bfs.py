"""Distributed BFS tree construction.

Builds the BFS tree the global broadcast/convergecast primitive (Lemma 1)
runs over, as an actual :class:`NodeProgram` flood.  The measured round
count equals the root's hop-eccentricity, and the resulting tree's depth
is the ``D`` term the paper's bounds carry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .engine import make_engine
from .messages import Message
from .network import Network
from .node import NodeContext, NodeProgram, Outgoing


@dataclass
class BFSTree:
    """A rooted BFS tree of the network."""

    root: int
    parent: List[Optional[int]]
    depth: List[int]
    rounds: int

    @property
    def height(self) -> int:
        """Tree height = hop-eccentricity of the root (>= D/2)."""
        return max(self.depth)

    def children(self) -> List[List[int]]:
        """Children lists, computed from parents."""
        kids: List[List[int]] = [[] for _ in self.parent]
        for v, p in enumerate(self.parent):
            if p is not None:
                kids[p].append(v)
        return kids

    def path_to_root(self, node: int) -> List[int]:
        """Vertices from ``node`` up to (and including) the root."""
        path = [node]
        while self.parent[path[-1]] is not None:
            path.append(self.parent[path[-1]])  # type: ignore[arg-type]
        return path


class _BFSProgram(NodeProgram):
    """Flooding program: each node adopts the smallest depth it hears."""

    def __init__(self, root: int) -> None:
        self._root = root

    def initialize(self, ctx: NodeContext) -> List[Outgoing]:
        if ctx.node == self._root:
            ctx.state["depth"] = 0
            ctx.state["parent"] = None
            message = Message("bfs", (0,))
            return [(v, message) for v in ctx.neighbors]
        ctx.state["depth"] = None
        ctx.state["parent"] = None
        return []

    def on_round(self, ctx: NodeContext,
                 inbox: List[Tuple[int, Message]]) -> List[Outgoing]:
        best_depth = ctx.state["depth"]
        best_parent = ctx.state["parent"]
        improved = False
        for sender, message in inbox:
            depth = message.payload[0] + 1
            if best_depth is None or depth < best_depth or (
                    depth == best_depth and best_parent is not None
                    and sender < best_parent):
                if best_depth is None or depth < best_depth:
                    improved = True
                best_depth = depth
                best_parent = sender
        ctx.state["depth"] = best_depth
        ctx.state["parent"] = best_parent
        if not improved:
            return []
        # one immutable Message shared across all targets: the engines
        # never key on identity, and re-announcing the same depth to
        # every neighbor otherwise pays one dataclass construction each
        message = Message("bfs", (best_depth,))
        return [(v, message) for v in ctx.neighbors if v != best_parent]


def build_bfs_tree(network: Network, root: int = 0,
                   capacity_words: int = 2,
                   engine: Optional[str] = None) -> BFSTree:
    """Run the BFS flood on the selected engine and extract the tree."""
    simulator = make_engine(network, capacity_words, engine)
    report = simulator.run(_BFSProgram(root))
    n = network.num_nodes
    parent: List[Optional[int]] = [None] * n
    depth: List[int] = [0] * n
    for u in range(n):
        state = report.state_of(u)
        parent[u] = state["parent"]
        depth[u] = state["depth"] if state["depth"] is not None else 0
    return BFSTree(root=root, parent=parent, depth=depth,
                   rounds=report.rounds)
