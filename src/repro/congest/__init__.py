"""CONGEST-model simulation substrate: synchronous round engine,
port-numbered networks, and the distributed primitives (BFS, Lemma-1
broadcast, Bellman–Ford explorations) the paper's construction uses."""

from .messages import DEFAULT_CAPACITY_WORDS, Message, check_fits_capacity
from .metrics import CostLedger, PhaseCost, congestion_rounds, pipelined_rounds
from .network import Network
from .node import NodeContext, NodeProgram, make_contexts
from .simulator import RunReport, Simulator
from .engine import (
    DEFAULT_ENGINE,
    Engine,
    available_engines,
    make_engine,
    register_engine,
    resolve_engine_name,
)
from .fast_engine import FastSimulator
from .bfs import BFSTree, build_bfs_tree
from .broadcast import (
    broadcast_all,
    broadcast_from_root,
    convergecast,
    simulate_flood_rounds,
)
from .bellman_ford import (
    ExplorationResult,
    JoinRule,
    NearestSourceResult,
    VirtualExplorationResult,
    exploration_path_counts,
    multi_source_exploration,
    multi_source_exploration_reference,
    nearest_source_exploration,
    nearest_source_exploration_reference,
    reset_exploration_path_counts,
    virtual_multi_source_exploration,
)

__all__ = [
    "DEFAULT_CAPACITY_WORDS",
    "Message",
    "check_fits_capacity",
    "CostLedger",
    "PhaseCost",
    "congestion_rounds",
    "pipelined_rounds",
    "Network",
    "NodeContext",
    "NodeProgram",
    "make_contexts",
    "RunReport",
    "Simulator",
    "DEFAULT_ENGINE",
    "Engine",
    "FastSimulator",
    "available_engines",
    "make_engine",
    "register_engine",
    "resolve_engine_name",
    "BFSTree",
    "build_bfs_tree",
    "broadcast_all",
    "broadcast_from_root",
    "convergecast",
    "simulate_flood_rounds",
    "ExplorationResult",
    "JoinRule",
    "NearestSourceResult",
    "VirtualExplorationResult",
    "exploration_path_counts",
    "multi_source_exploration",
    "reset_exploration_path_counts",
    "multi_source_exploration_reference",
    "nearest_source_exploration",
    "nearest_source_exploration_reference",
    "virtual_multi_source_exploration",
]
