"""Global broadcast / convergecast (paper, Lemma 1).

    "Suppose every v holds m_v messages of O(1) words, for a total of
     M = sum m_v.  Then all vertices can receive all the messages within
     O(M + D) rounds."

The mechanism is standard pipelining over a BFS tree: messages are
convergecast to the root and then broadcast down; with per-edge capacity
``c`` this takes ``ceil(M/c) + height`` rounds each way.  We implement the
primitive as a *scheduled* execution: the data movement is performed
exactly (everyone ends up with all messages) and the round cost is charged
from the measured word total and the measured tree height.

A literal packet-level simulation of the same pipeline is provided for
validation (:func:`simulate_flood_rounds`); tests check the scheduled
charge dominates/matches it on small inputs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .bfs import BFSTree
from .engine import make_engine
from .messages import Message
from .metrics import pipelined_rounds
from .network import Network
from .node import NodeContext, NodeProgram, Outgoing


def broadcast_all(tree: BFSTree, per_node_words: Sequence[int],
                  capacity_words: int = 2) -> int:
    """Round cost of delivering every node's messages to every node.

    ``per_node_words[v]`` is the number of words node ``v`` contributes.
    Returns the Lemma 1 round count: convergecast up plus broadcast down,
    each pipelined: ``2 * (ceil(M/c) + height)``.
    """
    total_words = sum(per_node_words)
    one_way = pipelined_rounds(total_words, capacity_words, tree.height)
    return 2 * one_way


def convergecast(tree: BFSTree, per_node_words: Sequence[int],
                 capacity_words: int = 2) -> int:
    """Round cost of collecting every node's words at the root only."""
    total_words = sum(per_node_words)
    return pipelined_rounds(total_words, capacity_words, tree.height)


def broadcast_from_root(tree: BFSTree, total_words: int,
                        capacity_words: int = 2) -> int:
    """Round cost of pushing ``total_words`` from the root to everyone."""
    return pipelined_rounds(total_words, capacity_words, tree.height)


class _GossipProgram(NodeProgram):
    """Literal flood: every node forwards every distinct message once.

    Used only to validate the scheduled Lemma 1 charge on small networks
    (flooding is round-equivalent to tree pipelining up to constants).
    """

    def __init__(self, initial: Dict[int, List[Tuple]]) -> None:
        self._initial = initial

    def initialize(self, ctx: NodeContext) -> List[Outgoing]:
        ctx.state["seen"] = set()
        out: List[Outgoing] = []
        for item in self._initial.get(ctx.node, []):
            ctx.state["seen"].add(item)
            # one immutable Message per item, shared across all targets
            message = Message("gossip", item)
            for v in ctx.neighbors:
                out.append((v, message))
        return out

    def on_round(self, ctx: NodeContext,
                 inbox: List[Tuple[int, Message]]) -> List[Outgoing]:
        out: List[Outgoing] = []
        seen = ctx.state["seen"]
        for sender, message in inbox:
            item = message.payload
            if item in seen:
                continue
            seen.add(item)
            # forward the received Message object itself — it is frozen,
            # so fan-out costs list appends, not dataclass constructions
            for v in ctx.neighbors:
                if v != sender:
                    out.append((v, message))
        return out


def simulate_flood_rounds(network: Network,
                          initial: Dict[int, List[Tuple]],
                          capacity_words: int = 2,
                          engine: Optional[str] = None
                          ) -> Tuple[int, List[set]]:
    """Actually flood ``initial`` messages; return (rounds, per-node sets)."""
    simulator = make_engine(network, capacity_words, engine)
    report = simulator.run(_GossipProgram(initial))
    seen = [report.state_of(u)["seen"] for u in range(network.num_nodes)]
    return report.rounds, seen
