"""Distributed Bellman–Ford explorations with congestion accounting.

Three variants back the paper's construction:

* :func:`nearest_source_exploration` — multi-root BFS/Bellman–Ford where
  every node keeps only its *nearest* root (used for exact pivots,
  Section 3.1): each node relays at most one estimate per iteration, so an
  iteration costs O(1) rounds.
* :func:`multi_source_exploration` — independent per-source explorations
  with a *join predicate* (used for cluster growing, Sections 3.2/3.3):
  a node stores and relays an estimate for source ``u`` only while the
  predicate holds (Eq. (11)/(14)).  Congestion — the number of distinct
  live estimates a node must push over one link in one iteration — is
  measured, and the iteration is charged ``ceil(words / capacity)`` rounds
  exactly as the paper's pipelining argument schedules it.
* :func:`virtual_multi_source_exploration` — the same, but over a virtual
  graph whose "links" are realized by global broadcast (Lemma 1): every
  iteration's updates are convergecast to a BFS-tree root and broadcast
  back, costing ``O(M + D)`` measured rounds.

All variants run round-by-round over explicit per-node state, so their
outputs are exactly what the message-passing execution would compute.

Like the CONGEST round engine, the two physical-graph explorations ship
in two implementations: the original dict-based loops live on as
``nearest_source_exploration_reference`` /
``multi_source_exploration_reference`` (the semantic oracles), while
the public names run a **batched flat-array path** — CSR/snapshot
adjacency (no per-vertex generator dispatch), candidate arrays with a
touched-list instead of ``setdefault`` churn, and sorted frontiers.

Join predicates come in two forms: an opaque callback
(:data:`JoinPredicate`, evaluated once per improving winner) and the
declarative :class:`JoinRule` — a per-vertex threshold plan covering
every rule the paper actually applies (Eq. (11), the middle-scale
pivot-distance filter, Eq. (14)/(15)), which the dense kernel path
evaluates as a masked vector compare fused into the scatter-min
relaxation instead of a per-winner Python call.  Dispatch is observable
through :func:`exploration_path_counts`; CI gates on a paper rule never
degrading to the callback evaluation when numpy is available.

One deliberate semantic pin, applied to *both* implementations:
frontiers are processed in sorted vertex order (the originals iterated
a ``set``/dict), so equal-distance ties resolve deterministically and
identically across the pair.  Distances, frontier membership,
iteration and round counts were already order-independent; only
``source_of``/``parent`` ties could differ, and no seeded workload in
the suite observes a change.  The differential harness
(``tests/congest/test_engine_equivalence.py``) asserts every result
field matches exactly between oracle and batched path.  The
virtual-graph variant stays dict-based: its instances are tiny
(``|A_{ceil(k/2)}|`` vertices) and its cost is dominated by the
Lemma-1 broadcast accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..graphs import csr as _csr
from ..graphs import recording as _recording
from ..graphs.csr import csr_view, frontier_neighbors, relax_frontier
from ..graphs.shortest_paths import INF
from ..graphs.virtual_graph import VirtualGraph
from ..graphs.weighted_graph import WeightedGraph
from .bfs import BFSTree
from .metrics import congestion_rounds, pipelined_rounds

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

#: join(vertex, source, candidate_distance) -> bool.  Models the local
#: decision rule a vertex applies on receiving an estimate, so it MUST
#: be a pure function of its arguments: it is evaluated once per
#: improving (vertex, source) winner, but the order of those calls
#: across pairs is an implementation detail that differs between the
#: execution paths (the differential guarantees below are stated for
#: pure predicates, which is all the paper's join rules are).  It must
#: also be *antitone in the distance* (once a candidate is rejected,
#: every farther candidate is too) — true of the paper's threshold
#: rules (Eq. (11)/(14)) and relied on by the support-edge recording
#: (:mod:`repro.graphs.recording`), which records only applied updates.
JoinPredicate = Callable[[int, int, float], bool]


@dataclass(frozen=True)
class JoinRule:
    """Declarative join plan: accept ``(v, s, d)`` iff ``d`` beats a
    per-vertex threshold.

    Every join rule the paper's cluster growing applies has exactly
    this shape — rule (11) compares against ``d_G(v, A_{i+1})``, the
    middle scale against the exact ``(k+1)/2``-pivot distance, rules
    (14)/(15) against scaled pivot budgets on the virtual graphs — so
    instead of an opaque :data:`JoinPredicate` closure, callers hand
    the exploration the *description*: a ``threshold`` array indexed by
    vertex (``INF`` entries always accept), a ``strict`` flag (``d <
    threshold[v]`` when set, ``d <= threshold[v]`` otherwise; every
    paper rule is strict), and an optional ``exempt_sources`` set whose
    explorations bypass the threshold entirely.  The dense kernel path
    evaluates the rule as one masked vector compare fused into the
    scatter-min relaxation (:func:`repro.graphs.csr.relax_frontier`
    ``threshold=``); the fallback paths evaluate the same comparison
    inline.  A rule is by construction a pure, distance-antitone
    predicate, so every differential guarantee stated for callbacks
    applies.
    """

    threshold: Sequence[float]
    strict: bool = True
    exempt_sources: Optional[frozenset] = None

    def accepts(self, v: int, s: int, d: float) -> bool:
        """Scalar evaluation (the semantics the arrays implement)."""
        if self.exempt_sources is not None and s in self.exempt_sources:
            return True
        budget = self.threshold[v]
        return d < budget if self.strict else d <= budget

    def as_predicate(self) -> JoinPredicate:
        """The equivalent opaque callback (reference/oracle paths)."""
        return self.accepts

    def source_threshold(self, s: int, vector):
        """The threshold array ``s``'s exploration runs under, or
        ``None`` when ``s`` is exempt (= unconditional accept)."""
        if self.exempt_sources is not None and s in self.exempt_sources:
            return None
        return vector


#: Words per (source, distance) estimate on the wire.
_ESTIMATE_WORDS = 2

#: Ceiling on ``|sources| * n`` cells before the dense per-source rows
#: of the kernel-based multi-source path stop being worth their memory.
_DENSE_CELL_LIMIT = 1 << 22

#: Diagnostic counters: which implementation served each
#: :func:`multi_source_exploration` call.  CI gates on these — a paper
#: join rule (a :class:`JoinRule`) must never silently degrade to a
#: per-winner callback evaluation when numpy is available.
_PATH_COUNTS = {"dense-rule": 0, "dense-callback": 0,
                "bucketed-rule": 0, "bucketed-callback": 0}


def exploration_path_counts() -> Dict[str, int]:
    """A copy of the per-path dispatch counters (diagnostics/CI)."""
    return dict(_PATH_COUNTS)


def reset_exploration_path_counts() -> None:
    for key in _PATH_COUNTS:
        _PATH_COUNTS[key] = 0


def _flat_adjacency(graph: WeightedGraph
                    ) -> Tuple[List[int], List[int], List[int]]:
    """CSR adjacency ``(starts, neighbors, weights)`` as plain lists.

    Served from the graph's cached :func:`csr_view` (same neighbor
    order by that view's contract); numpy-backed views are converted to
    lists because the scalar exploration loops below index them far
    faster than numpy arrays.  The triplet is cached on the graph
    (``_flat_cache``) keyed by the mutation ``version`` and the numpy
    availability it was derived under — exactly the CSR view's own
    invalidation contract — so one build's many exploration calls share
    a single conversion.  The cached lists are *shared*: callers must
    treat them as read-only.
    """
    cache = graph._flat_cache
    version = graph.version
    if cache is not None and cache[0] == version \
            and cache[1] == _csr.HAVE_NUMPY:
        return cache[2]
    view = csr_view(graph)
    if view.vectorized:
        flat = (view.indptr.tolist(), view.indices.tolist(),
                view.weights.tolist())
    else:
        # fresh copies: the view's lists are the live CSR cache
        flat = (list(view.indptr), list(view.indices),
                list(view.weights))
    graph._flat_cache = (version, _csr.HAVE_NUMPY, flat)
    return flat


@dataclass
class NearestSourceResult:
    """Outcome of :func:`nearest_source_exploration`."""

    dist: List[float]
    source_of: List[Optional[int]]
    parent: List[Optional[int]]
    iterations: int
    rounds: int


def nearest_source_exploration_reference(graph: WeightedGraph,
                                         sources: Sequence[int],
                                         iterations: int,
                                         capacity_words: int = 2
                                         ) -> NearestSourceResult:
    """Dict-based oracle for :func:`nearest_source_exploration`.

    The original per-node loop, kept as the semantic reference for the
    differential harness.  The frontier is processed in sorted vertex
    order so equal-distance ties resolve deterministically (and
    identically to the batched implementation).
    """
    n = graph.num_vertices
    dist: List[float] = [INF] * n
    source_of: List[Optional[int]] = [None] * n
    parent: List[Optional[int]] = [None] * n
    for s in sources:
        dist[s] = 0
        source_of[s] = s
    frontier = set(sources)
    per_iter_words: List[int] = []
    executed = 0
    for _ in range(iterations):
        if not frontier:
            break
        executed += 1
        per_iter_words.append(_ESTIMATE_WORDS if frontier else 0)
        updates: Dict[int, Tuple[float, int, int]] = {}
        for u in sorted(frontier):
            du = dist[u]
            su = source_of[u]
            assert su is not None
            for v, weight in graph.neighbor_weights(u):
                nd = du + weight
                best = updates.get(v)
                if nd < dist[v] and (best is None or nd < best[0]):
                    updates[v] = (nd, su, u)
        frontier = set()
        for v, (nd, s, via) in updates.items():
            if nd < dist[v]:
                dist[v] = nd
                source_of[v] = s
                parent[v] = via
                frontier.add(v)
    rounds = congestion_rounds(per_iter_words, capacity_words)
    return NearestSourceResult(dist=dist, source_of=source_of,
                               parent=parent, iterations=executed,
                               rounds=rounds)


def nearest_source_exploration(graph: WeightedGraph,
                               sources: Sequence[int],
                               iterations: int,
                               capacity_words: int = 2
                               ) -> NearestSourceResult:
    """Bounded Bellman–Ford rooted at a vertex *set*.

    After ``t`` iterations each node knows the minimum, over sources ``s``,
    of the ``t``-hop-bounded distance to ``s``, together with the closest
    such source and the neighbor (parent) realizing it — exactly the
    paper's pivot computation ("conduct 4 n^{i/k} ln n iterations of
    Bellman-Ford rooted in the vertex set A_i").

    Each node sends one ``(source, dist)`` pair per link per iteration, so
    an iteration costs ``ceil(2 / capacity)`` rounds.

    Batched flat-array implementation: relaxations walk a CSR adjacency,
    per-iteration candidates live in flat arrays reset via a touched
    list, and the frontier is a sorted vertex list.  Result-identical to
    :func:`nearest_source_exploration_reference`.
    """
    n = graph.num_vertices
    starts, nbrs, wts = _flat_adjacency(graph)
    dist: List[float] = [INF] * n
    source_of: List[Optional[int]] = [None] * n
    parent: List[Optional[int]] = [None] * n
    for s in sources:
        dist[s] = 0
        source_of[s] = s
    frontier = sorted(set(sources))
    cand_d: List[float] = [INF] * n
    cand_s = [0] * n
    cand_p = [0] * n
    per_iter_words: List[int] = []
    executed = 0
    for _ in range(iterations):
        if not frontier:
            break
        executed += 1
        per_iter_words.append(_ESTIMATE_WORDS)
        touched: List[int] = []
        for u in frontier:
            du = dist[u]
            su = source_of[u]
            for j in range(starts[u], starts[u + 1]):
                v = nbrs[j]
                nd = du + wts[j]
                if nd < dist[v] and nd < cand_d[v]:
                    if cand_d[v] == INF:
                        touched.append(v)
                    cand_d[v] = nd
                    cand_s[v] = su
                    cand_p[v] = u
        frontier = []
        rec = _recording.active()
        for v in sorted(touched):
            dist[v] = cand_d[v]
            source_of[v] = cand_s[v]
            parent[v] = cand_p[v]
            if rec is not None:
                rec.commit(cand_p[v], v)
            cand_d[v] = INF
            frontier.append(v)
    rounds = congestion_rounds(per_iter_words, capacity_words)
    return NearestSourceResult(dist=dist, source_of=source_of,
                               parent=parent, iterations=executed,
                               rounds=rounds)


@dataclass
class ExplorationResult:
    """Outcome of a per-source exploration with a join predicate.

    ``dist[v]`` maps each vertex to ``{source: estimate}`` for the sources
    whose exploration it joined; ``parent[v][source]`` is the neighbor the
    winning estimate arrived through (``None`` at the source itself).
    """

    dist: List[Dict[int, float]]
    parent: List[Dict[int, Optional[int]]]
    iterations: int
    rounds: int
    max_estimates_per_node: int = 0

    def members_of(self, source: int) -> List[int]:
        """Vertices that joined ``source``'s exploration."""
        return [v for v in range(len(self.dist)) if source in self.dist[v]]


def multi_source_exploration_reference(graph: WeightedGraph,
                                       sources: Sequence[int],
                                       iterations: int,
                                       join: JoinPredicate,
                                       capacity_words: int = 2
                                       ) -> ExplorationResult:
    """Dict-based oracle for :func:`multi_source_exploration`.

    The original setdefault-heavy loop, kept as the semantic reference
    for the differential harness; frontier and update application run in
    sorted vertex order so tie-breaking matches the batched path.
    """
    n = graph.num_vertices
    dist: List[Dict[int, float]] = [dict() for _ in range(n)]
    parent: List[Dict[int, Optional[int]]] = [dict() for _ in range(n)]
    frontier: Dict[int, List[int]] = {}
    for s in sources:
        dist[s][s] = 0.0
        parent[s][s] = None
        frontier.setdefault(s, []).append(s)
    per_iter_words: List[int] = []
    executed = 0
    max_live = 0
    for _ in range(iterations):
        if not frontier:
            break
        executed += 1
        congestion = max(len(updated) for updated in frontier.values())
        per_iter_words.append(congestion * _ESTIMATE_WORDS)
        updates: Dict[int, Dict[int, Tuple[float, int]]] = {}
        for u, updated_sources in sorted(frontier.items()):
            du = dist[u]
            for v, weight in graph.neighbor_weights(u):
                bucket = updates.setdefault(v, {})
                for s in updated_sources:
                    nd = du[s] + weight
                    best = bucket.get(s)
                    if best is None or nd < best[0]:
                        bucket[s] = (nd, u)
        frontier = {}
        for v, bucket in sorted(updates.items()):
            changed: List[int] = []
            for s, (nd, via) in bucket.items():
                current = dist[v].get(s, INF)
                if nd < current and join(v, s, nd):
                    dist[v][s] = nd
                    parent[v][s] = via
                    changed.append(s)
            if changed:
                frontier[v] = changed
            if len(dist[v]) > max_live:
                max_live = len(dist[v])
    rounds = congestion_rounds(per_iter_words, capacity_words)
    return ExplorationResult(dist=dist, parent=parent, iterations=executed,
                             rounds=rounds,
                             max_estimates_per_node=max_live)


def multi_source_exploration(graph: WeightedGraph,
                             sources: Sequence[int],
                             iterations: int,
                             join: JoinPredicate,
                             capacity_words: int = 2,
                             trace_label: Optional[str] = None
                             ) -> ExplorationResult:
    """Parallel bounded-depth Bellman–Ford from every source.

    Implements the cluster-growing loop of Section 3.2: a vertex ``v``
    receiving an estimate ``b_v(u)`` for source ``u`` stores and relays it
    iff ``join(v, u, b_v(u))`` holds; improved estimates are re-relayed.
    Sources always hold estimate 0 for themselves.

    Round accounting measures, per iteration, the maximum number of words
    any single node must push over one of its links (every live update is
    sent to all neighbors), and charges ``ceil(words / capacity)`` rounds
    — the paper's congestion argument (Claim 2 bounds the number of live
    estimates per node by ``Õ(n^{1/k})`` w.h.p.).

    Two batched implementations sit behind this name, both
    result-identical to :func:`multi_source_exploration_reference`:

    * with numpy (and affordable ``|sources| × n`` memory), per-source
      dense distance rows advanced by the shared scatter-min kernel of
      :mod:`repro.graphs.csr` — the same kernel the batched source
      detection uses — replacing the per-(vertex, source) candidate
      bucket bookkeeping entirely.  A declarative :class:`JoinRule`
      additionally fuses the join comparison into the kernel itself
      (one masked vector compare), eliminating the per-winner Python
      call; an opaque callback keeps the per-winner evaluation;
    * otherwise, flat candidate buckets over an adjacency snapshot (the
      PR-2 path, kept as the universal fallback; join rules are still
      evaluated as inline comparisons there, never as calls).

    ``trace_label`` opts this call into exploration tracing: when an
    active recorder has ``capture_explorations`` set and the join is a
    declarative :class:`JoinRule`, the per-source applied-update event
    stream is stored on the recorder as an
    :class:`~repro.graphs.recording.ExplorationTrace` under that label
    (both the kernel and the bucketed path capture the same events —
    applied updates are result-pinned across the implementations).
    """
    n = graph.num_vertices
    is_rule = isinstance(join, JoinRule)
    if _csr.HAVE_NUMPY and n > 0 and sources \
            and len(set(sources)) * n <= _DENSE_CELL_LIMIT:
        view = csr_view(graph)
        if view.vectorized:
            if is_rule:
                _PATH_COUNTS["dense-rule"] += 1
                return _multi_source_dense_rule(view, graph, sources,
                                                iterations, join,
                                                capacity_words,
                                                trace_label)
            _PATH_COUNTS["dense-callback"] += 1
            return _multi_source_dense(view, graph, sources, iterations,
                                       join, capacity_words)
    _PATH_COUNTS["bucketed-rule" if is_rule else "bucketed-callback"] += 1
    return _multi_source_bucketed(graph, sources, iterations, join,
                                  capacity_words, trace_label)


def _trace_events(rec, join: JoinPredicate, trace_label: Optional[str]
                  ) -> Optional[Dict[int, List[Tuple[int, int, int, float]]]]:
    """The event sink for this call, or ``None`` when not tracing."""
    if (trace_label is not None and rec is not None
            and rec.capture_explorations and isinstance(join, JoinRule)):
        return {}
    return None


def _store_trace(rec, trace_label: str, sources: Sequence[int],
                 iterations: int, capacity_words: int, rule: JoinRule,
                 events: Dict[int, List[Tuple[int, int, int, float]]]
                 ) -> None:
    rec.add_trace(_recording.ExplorationTrace(
        label=trace_label, sources=tuple(sources), budget=iterations,
        capacity_words=capacity_words,
        threshold=tuple(rule.threshold), strict=rule.strict,
        exempt_sources=rule.exempt_sources, events=events))


def _multi_source_dense(view, graph: WeightedGraph,
                        sources: Sequence[int], iterations: int,
                        join: JoinPredicate,
                        capacity_words: int) -> ExplorationResult:
    """Kernel-based path: one dense distance row per source.

    Per iteration each live source row is advanced one scatter-min hop
    from its own (ascending) frontier; the strictly-improving winners
    the kernel returns are exactly the reference's bucket winners, with
    the same "first strict minimum" parent tie-break, so the join
    predicate sees the same (vertex, source, distance) candidates.
    (The *order* of join calls across pairs is source-major here and
    target-major in the reference — indistinguishable for the pure
    predicates the contract requires.)  Congestion is still charged
    from the per-vertex live-update counts, and the max-estimates
    statistic samples the frontier's out-neighborhood — the same
    vertices whose buckets the reference inspects.
    """
    n = graph.num_vertices
    dist: List[Dict[int, float]] = [dict() for _ in range(n)]
    parent: List[Dict[int, Optional[int]]] = [dict() for _ in range(n)]
    rows: Dict[int, object] = {}
    initial: Dict[int, List[int]] = {}
    for s in sources:
        if s not in rows:
            row = _np.full(n, INF)
            row[s] = 0.0
            rows[s] = row
        dist[s][s] = 0.0
        parent[s][s] = None
        initial.setdefault(s, []).append(s)
    frontier: List[Tuple[int, List[int]]] = sorted(initial.items())
    per_iter_words: List[int] = []
    executed = 0
    max_live = 0
    for _ in range(iterations):
        if not frontier:
            break
        executed += 1
        congestion = max(len(srcs) for _u, srcs in frontier)
        per_iter_words.append(congestion * _ESTIMATE_WORDS)
        by_source: Dict[int, List[int]] = {}
        for u, updated_sources in frontier:   # ascending u keeps the
            for s in updated_sources:         # per-source frontiers sorted
                by_source.setdefault(s, []).append(u)
        sampled = frontier_neighbors(view, [u for u, _s in frontier])
        changed_of: Dict[int, List[int]] = {}
        rec = _recording.active()
        for s in sorted(by_source):
            row = rows[s]
            # kernel recording is suppressed: a winner the join rejects
            # is not support (join rules are antitone in the distance,
            # so a heavier candidate stays rejected) — only applied
            # updates are recorded, mirroring the reference path
            targets, dists, vias = relax_frontier(view, row,
                                                  by_source[s],
                                                  record=False)
            for t, nd, via in zip(targets, dists, vias):
                t = int(t)
                nd = float(nd)
                if join(t, s, nd):
                    row[t] = nd
                    dist[t][s] = nd
                    parent[t][s] = int(via)
                    if rec is not None:
                        rec.commit(int(via), t)
                    changed_of.setdefault(t, []).append(s)
        frontier = sorted(changed_of.items())
        for v in sampled:
            live = len(dist[v])
            if live > max_live:
                max_live = live
    rounds = congestion_rounds(per_iter_words, capacity_words)
    return ExplorationResult(dist=dist, parent=parent, iterations=executed,
                             rounds=rounds,
                             max_estimates_per_node=max_live)


def _multi_source_dense_rule(view, graph: WeightedGraph,
                             sources: Sequence[int], iterations: int,
                             rule: JoinRule, capacity_words: int,
                             trace_label: Optional[str] = None
                             ) -> ExplorationResult:
    """Kernel path for declarative join rules: every live
    ``(source, vertex)`` estimate across *all* explorations advances in
    one flat scatter-min per hop, with the join comparison fused in as
    a masked vector compare.

    The frontier is three parallel arrays — source row, vertex,
    distance — covering every exploration at once.  A hop gathers the
    out-edges of each frontier pair (``repeat`` over the CSR slices),
    applies the join rule to the candidates as one vector compare
    (``cand < threshold[target]``, exempt-source rows forced through),
    keeps strict improvements against the current distance matrix, and
    reduces to one winner per ``(row, target)`` key with a single
    ``lexsort``.  Work per hop is proportional to the *live* edges —
    the same cells the reference's dict loops touch — not to
    ``|sources| × |frontier|``, which is what makes this profitable for
    many small localized clusters.

    Bit-identity with the per-winner callback paths:

    * Candidates are ordered by (frontier position, CSR edge index)
      and the frontier is kept sorted by (row, vertex), so the
      ``lexsort`` picking the earliest position among equal minima
      reproduces the kernel's reversed-scatter tie-break (ascending
      frontier: first winning edge in CSR order supplies the parent).
    * Filtering *candidates* by the threshold before the group minimum
      equals filtering winners afterwards: rules are antitone in the
      distance, so if the group minimum fails the compare every other
      candidate in the group fails it too.
    * A rejected pair keeps its ``INF`` entry and every later
      (heavier) candidate re-fails the same fused compare, exactly as
      the reference's repeated predicate calls would.
    * Because every surviving winner is applied, committing the
      ``(via, target)`` pairs at the raw unit reproduces the callback
      path's support transcript.

    Equivalence accounting mirrors the reference loop field by field:
    iteration-1 congestion is the source multiset's max multiplicity
    (duplicate sources inflate it, as the reference's frontier lists
    do), later congestion is the max per-vertex count of accepted
    updates from the previous hop, ``executed`` counts
    non-empty-frontier iterations, and the max-estimates statistic
    samples per-vertex live-estimate counts over the frontier's
    out-neighborhood after the hop's updates are applied.
    """
    n = graph.num_vertices
    thr = _np.asarray(rule.threshold, dtype=_np.float64)
    strict = rule.strict
    source_list = sorted(set(sources))
    num_rows = len(source_list)
    src = _np.asarray(source_list, dtype=_np.int64)
    dist_m = _np.full((num_rows, n), INF)
    par_m = _np.full((num_rows, n), -1, dtype=_np.int64)
    dist_m[_np.arange(num_rows), src] = 0.0
    exempt_rows = None
    if rule.exempt_sources is not None:
        exempt_rows = _np.asarray(
            [s in rule.exempt_sources for s in source_list], dtype=bool)
    indptr = view.indptr
    indices = view.indices
    weights = view.weights_f64()
    live = _np.zeros(n, dtype=_np.int64)
    live[src] = 1
    # frontier pairs sorted by (row, vertex) — the candidate order the
    # tie-break depends on
    fr_r = _np.arange(num_rows, dtype=_np.int64)
    fr_v = src.copy()
    fr_d = _np.zeros(num_rows)
    congestion = int(_np.bincount(
        _np.asarray(list(sources), dtype=_np.int64)).max())
    per_iter_words: List[int] = []
    executed = 0
    max_live = 0
    rec = _recording.active()
    events = _trace_events(rec, rule, trace_label)
    for _ in range(iterations):
        if fr_r.size == 0:
            break
        executed += 1
        per_iter_words.append(congestion * _ESTIMATE_WORDS)
        sampled = frontier_neighbors(view, _np.unique(fr_v))
        starts = indptr[fr_v]
        cnts = indptr[fr_v + 1] - starts
        total = int(cnts.sum())
        if total == 0:
            fr_r = fr_r[:0]
            continue   # charged but update-free trailing iteration
        eidx = _csr._gather_edge_indices(starts, cnts, total)
        c_r = _np.repeat(fr_r, cnts)
        c_via = _np.repeat(fr_v, cnts)
        c_t = indices[eidx]
        c_d = _np.repeat(fr_d, cnts) + weights[eidx]
        # the fused join: candidates against the per-vertex budget
        keep = (c_d < thr[c_t]) if strict else (c_d <= thr[c_t])
        if exempt_rows is not None:
            keep |= exempt_rows[c_r]
        keep &= c_d < dist_m[c_r, c_t]
        if not keep.any():
            fr_r = fr_r[:0]
        else:
            c_r = c_r[keep]
            c_via = c_via[keep]
            c_t = c_t[keep]
            c_d = c_d[keep]
            # one winner per (row, target): minimum distance, earliest
            # candidate among equals (frontier position then CSR edge
            # order — the kernel tie-break)
            key = c_r * n + c_t
            order = _np.lexsort(
                (_np.arange(c_d.size, dtype=_np.int64), c_d, key))
            k_sorted = key[order]
            sel = order[_np.r_[True, k_sorted[1:] != k_sorted[:-1]]]
            b_r = c_r[sel]
            b_t = c_t[sel]
            b_d = c_d[sel]
            b_via = c_via[sel]
            newly = b_t[dist_m[b_r, b_t] == INF]
            dist_m[b_r, b_t] = b_d
            par_m[b_r, b_t] = b_via
            _np.add.at(live, newly, 1)
            if rec is not None:
                rec.commit_pairs(zip(b_via.tolist(), b_t.tolist()))
            if events is not None:
                for r, t, via, nd in zip(b_r.tolist(), b_t.tolist(),
                                         b_via.tolist(), b_d.tolist()):
                    bucket = events.get(source_list[r])
                    if bucket is None:
                        bucket = events[source_list[r]] = []
                    bucket.append((executed, t, via, nd))
            congestion = int(_np.bincount(b_t).max())
            # next frontier re-sorted by (row, vertex) for the
            # tie-break order
            order2 = _np.lexsort((b_t, b_r))
            fr_r = b_r[order2]
            fr_v = b_t[order2]
            fr_d = b_d[order2]
        # the vertices whose buckets the reference inspects for the
        # live-estimate maximum, evaluated after this hop's updates
        if len(sampled):
            sampled_max = int(live[_np.asarray(sampled)].max())
            if sampled_max > max_live:
                max_live = sampled_max

    dist: List[Dict[int, float]] = [dict() for _ in range(n)]
    parent: List[Dict[int, Optional[int]]] = [dict() for _ in range(n)]
    rows_i, cols_i = _np.nonzero(dist_m < INF)   # row-major: source
    values = dist_m[rows_i, cols_i].tolist()     # ascending, vertex
    pars = par_m[rows_i, cols_i].tolist()        # ascending within
    for r, v, dv, pv in zip(rows_i.tolist(), cols_i.tolist(),
                            values, pars):
        s = source_list[r]
        dist[v][s] = dv
        parent[v][s] = None if pv < 0 else pv
    if events is not None:
        _store_trace(rec, trace_label, sources, iterations,
                     capacity_words, rule, events)
    rounds = congestion_rounds(per_iter_words, capacity_words)
    return ExplorationResult(dist=dist, parent=parent, iterations=executed,
                             rounds=rounds,
                             max_estimates_per_node=max_live)


def _multi_source_bucketed(graph: WeightedGraph,
                           sources: Sequence[int],
                           iterations: int,
                           join: JoinPredicate,
                           capacity_words: int = 2,
                           trace_label: Optional[str] = None
                           ) -> ExplorationResult:
    """Flat candidate buckets over the cached flat adjacency (the
    fallback batched path): a fast path for the common one-live-estimate
    relay, per-target buckets reset via a touched list, sorted
    frontiers.  A declarative :class:`JoinRule` is evaluated as an
    inline per-vertex comparison here — same acceptances as the fused
    kernel compare, no per-winner call."""
    n = graph.num_vertices
    starts, nbrs, wts = _flat_adjacency(graph)
    rule = join if isinstance(join, JoinRule) else None
    if rule is not None:
        thr = rule.threshold
        strict = rule.strict
        exempt = rule.exempt_sources
    dist: List[Dict[int, float]] = [dict() for _ in range(n)]
    parent: List[Dict[int, Optional[int]]] = [dict() for _ in range(n)]
    initial: Dict[int, List[int]] = {}
    for s in sources:
        dist[s][s] = 0.0
        parent[s][s] = None
        initial.setdefault(s, []).append(s)
    frontier: List[Tuple[int, List[int]]] = sorted(initial.items())
    buckets: List[Optional[Dict[int, Tuple[float, int]]]] = [None] * n
    per_iter_words: List[int] = []
    executed = 0
    max_live = 0
    rec = _recording.active()
    events = _trace_events(rec, join, trace_label)
    for _ in range(iterations):
        if not frontier:
            break
        executed += 1
        congestion = max(len(srcs) for _u, srcs in frontier)
        per_iter_words.append(congestion * _ESTIMATE_WORDS)
        touched: List[int] = []
        for u, updated_sources in frontier:
            du = dist[u]
            if len(updated_sources) == 1:
                # the common sparse case: one live estimate to relay
                s = updated_sources[0]
                d = du[s]
                for j in range(starts[u], starts[u + 1]):
                    v = nbrs[j]
                    bucket = buckets[v]
                    if bucket is None:
                        bucket = buckets[v] = {}
                        touched.append(v)
                    nd = d + wts[j]
                    best = bucket.get(s)
                    if best is None or nd < best[0]:
                        bucket[s] = (nd, u)
                continue
            relayed = [(s, du[s]) for s in updated_sources]
            for j in range(starts[u], starts[u + 1]):
                v = nbrs[j]
                bucket = buckets[v]
                if bucket is None:
                    bucket = buckets[v] = {}
                    touched.append(v)
                bucket_get = bucket.get
                weight = wts[j]
                for s, d in relayed:
                    nd = d + weight
                    best = bucket_get(s)
                    if best is None or nd < best[0]:
                        bucket[s] = (nd, u)
        frontier = []
        for v in sorted(touched):
            bucket = buckets[v]
            buckets[v] = None
            dv = dist[v]
            pv = parent[v]
            changed: List[int] = []
            if rule is not None:
                tv = thr[v]
            for s, (nd, via) in bucket.items():
                if nd >= dv.get(s, INF):
                    continue
                if rule is not None:
                    if ((nd >= tv) if strict else (nd > tv)) and (
                            exempt is None or s not in exempt):
                        continue
                elif not join(v, s, nd):
                    continue
                dv[s] = nd
                pv[s] = via
                if rec is not None:
                    # only applied updates are support: a bucket
                    # winner the dist/join checks reject stays
                    # rejected when its edge gets heavier (join
                    # rules are antitone in the distance)
                    rec.commit(via, v)
                if events is not None:
                    ev = events.get(s)
                    if ev is None:
                        ev = events[s] = []
                    ev.append((executed, v, via, nd))
                changed.append(s)
            if changed:
                frontier.append((v, changed))
            if len(dv) > max_live:
                max_live = len(dv)
    if events is not None:
        _store_trace(rec, trace_label, sources, iterations,
                     capacity_words, join, events)
    rounds = congestion_rounds(per_iter_words, capacity_words)
    return ExplorationResult(dist=dist, parent=parent, iterations=executed,
                             rounds=rounds,
                             max_estimates_per_node=max_live)


@dataclass
class VirtualExplorationResult:
    """Outcome of :func:`virtual_multi_source_exploration`.

    Distances/parents are dictionaries keyed by virtual vertex.
    """

    dist: Dict[int, Dict[int, float]]
    parent: Dict[int, Dict[int, Optional[int]]]
    iterations: int
    rounds: int
    broadcast_words: int = 0

    def members_of(self, source: int) -> List[int]:
        return [v for v, d in self.dist.items() if source in d]


def virtual_multi_source_exploration(virtual: VirtualGraph,
                                     sources: Sequence[int],
                                     iterations: int,
                                     join: JoinPredicate,
                                     bfs_tree: BFSTree,
                                     capacity_words: int = 2
                                     ) -> VirtualExplorationResult:
    """Bellman–Ford over a *virtual* graph, Phase-1 style (Section 3.3.2).

    Virtual edges are not physical links, so every iteration is realized
    by a global exchange (Lemma 1): all fresh estimates are convergecast
    to the BFS-tree root and broadcast back.  The measured cost of an
    iteration with ``M`` update words is
    ``2 * (ceil(M / capacity) + height)`` rounds.

    ``join`` may be a callback or a :class:`JoinRule` (evaluated
    scalar-wise via :meth:`JoinRule.accepts`); virtual instances are
    tiny — ``|A_{ceil(k/2)}|`` vertices — and Lemma-1 accounting
    dominates, so there is no vectorized variant to fall back from.
    """
    join = join.accepts if isinstance(join, JoinRule) else join
    dist: Dict[int, Dict[int, float]] = {v: {} for v in virtual.vertices()}
    parent: Dict[int, Dict[int, Optional[int]]] = {
        v: {} for v in virtual.vertices()}
    frontier: Dict[int, List[int]] = {}
    for s in sources:
        dist[s][s] = 0.0
        parent[s][s] = None
        frontier.setdefault(s, []).append(s)
    rounds = 0
    total_words = 0
    executed = 0
    for _ in range(iterations):
        if not frontier:
            break
        executed += 1
        update_words = sum(
            len(srcs) * (_ESTIMATE_WORDS + 1) for srcs in frontier.values())
        total_words += update_words
        rounds += 2 * pipelined_rounds(update_words, capacity_words,
                                       bfs_tree.height)
        updates: Dict[int, Dict[int, Tuple[float, int]]] = {}
        for u, updated_sources in frontier.items():
            du = dist[u]
            for v, weight in virtual.neighbor_weights(u):
                bucket = updates.setdefault(v, {})
                for s in updated_sources:
                    nd = du[s] + weight
                    best = bucket.get(s)
                    if best is None or nd < best[0]:
                        bucket[s] = (nd, u)
        frontier = {}
        for v, bucket in updates.items():
            changed: List[int] = []
            for s, (nd, via) in bucket.items():
                current = dist[v].get(s, INF)
                if nd < current and join(v, s, nd):
                    dist[v][s] = nd
                    parent[v][s] = via
                    changed.append(s)
            if changed:
                frontier[v] = changed
    return VirtualExplorationResult(dist=dist, parent=parent,
                                    iterations=executed, rounds=rounds,
                                    broadcast_words=total_words)
