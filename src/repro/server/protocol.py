"""Line protocol for the traffic server: length-prefixed TSV frames.

Every frame is ``u32 big-endian payload length | payload``; the payload
is UTF-8 text with tab-separated fields.  Text inside a binary length
prefix keeps the protocol trivially debuggable (``xxd`` shows the
queries) while making framing unambiguous for non-Python clients — no
escaping, no line-ending rules, and a reader always knows how many
bytes to wait for.

Requests (first field = op, second = caller-chosen request id echoed
back verbatim):

====================================  =================================
``R <id> <u> <v> [<u> <v> ...]``      route a batch of pairs
``E <id> <u> <v> [<u> <v> ...]``      estimate a batch of pairs
``PING <id>``                         liveness probe
``INFO <id>``                         server/artifact metadata
``STATS <id>``                        flattened metrics snapshot
``TRACE <id> [<n>]``                  last ``n`` finished trace spans
====================================  =================================

Responses:

* ``OK <id> <result> ...`` — one field per query result, in input
  order.  A route result is ``weight,center,level,v0-v1-...-vk``
  (weight as ``%.17g`` so float64 round-trips exactly; ``center`` is
  ``-1`` for a self-route); an estimate result is ``%.17g``.
* ``ERR <id> <code> <message>`` — typed error; ``code`` is one of
  :data:`ERROR_CODES`.  Malformed frames that destroy framing (an
  oversized or non-numeric length cannot be resynchronized) get an
  ``ERR`` with id ``-`` and then the connection closes; every decodable
  frame keeps the connection alive.

The module is transport-agnostic: pure ``bytes <-> message`` codecs
plus the asyncio stream helpers ``read_frame``/``write_frame``.
"""

from __future__ import annotations

import asyncio
import struct
from typing import List, Optional, Sequence, Tuple

from ..core.compiled import CompiledRoute
from ..exceptions import ProtocolError

#: Frames longer than this are rejected before allocation — a hostile
#: or corrupt length prefix must not let a client size our buffers.
MAX_FRAME_BYTES = 1 << 20

#: Pairs-per-request cap ("oversized batch" in the fuzz grid); large
#: client batches should be split client-side — the broker re-fuses
#: them anyway.
MAX_PAIRS_PER_REQUEST = 4096

#: ``ERR`` frame codes -> meaning.
ERROR_CODES = {
    "protocol": "malformed frame or request",
    "parameter": "well-formed request with invalid query input",
    "serving": "backend unavailable (shutdown, dead pool worker)",
    "internal": "unexpected server-side failure",
}

_LEN = struct.Struct(">I")

_OP_ROUTE = "R"
_OP_ESTIMATE = "E"
_OP_PING = "PING"
_OP_INFO = "INFO"
_OP_STATS = "STATS"
_OP_TRACE = "TRACE"

REQUEST_OPS = (_OP_ROUTE, _OP_ESTIMATE, _OP_PING, _OP_INFO,
               _OP_STATS, _OP_TRACE)


# ----------------------------------------------------------------------
# Frame layer
# ----------------------------------------------------------------------
def encode_frame(payload: str) -> bytes:
    """``u32 length | UTF-8 payload`` as one bytes object."""
    raw = payload.encode("utf-8")
    if len(raw) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(raw)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    return _LEN.pack(len(raw)) + raw


async def read_frame(reader: asyncio.StreamReader,
                     max_frame: int = MAX_FRAME_BYTES
                     ) -> Optional[str]:
    """Read one frame payload; ``None`` on clean EOF.

    Raises :class:`ProtocolError` for an unrecoverable stream state
    (oversized declared length, or EOF inside a frame — both mean the
    byte stream can no longer be trusted to align with frame
    boundaries) and ``UnicodeDecodeError``-wrapping ``ProtocolError``
    for a frame whose bytes are not UTF-8 (recoverable: the next frame
    starts at a known offset).
    """
    try:
        # readexactly, not read(): a 4-byte prefix may legally arrive
        # split across TCP segments, and a short read here is not EOF.
        head = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None          # clean EOF between frames
        raise ProtocolError(
            f"truncated frame header ({len(exc.partial)} of "
            f"{_LEN.size} bytes before EOF)") from None
    (length,) = _LEN.unpack(head)
    if length > max_frame:
        raise ProtocolError(
            f"declared frame length {length} exceeds the "
            f"{max_frame}-byte limit")
    try:
        raw = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"truncated frame: wanted {length} bytes, stream ended "
            f"after {len(exc.partial)}") from None
    try:
        return raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise FramePayloadError(
            f"frame payload is not valid UTF-8: {exc}") from None


class FramePayloadError(ProtocolError):
    """A frame whose *payload* is bad but whose framing was intact —
    the server can answer with ``ERR`` and keep the connection."""


def write_frame(writer: asyncio.StreamWriter, payload: str) -> None:
    writer.write(encode_frame(payload))


# ----------------------------------------------------------------------
# Request / response payloads
# ----------------------------------------------------------------------
def _strict_int(text: str) -> int:
    """Parse a TSV endpoint strictly: ASCII digits, at most one
    leading ``-``.  Bare ``int()`` is far too permissive for a wire
    protocol — it accepts PEP-515 underscores (``"1_0"`` -> ``10``),
    surrounding whitespace, a leading ``+``, and non-ASCII digit
    scripts, all of which would silently *misroute* a typo instead of
    returning a typed ``ERR``."""
    body = text[1:] if text.startswith("-") else text
    if not body or not body.isascii() or not body.isdigit():
        raise ValueError(text)
    return int(text)


class Request:
    """One decoded request frame.  ``limit`` is the optional span
    count of a ``TRACE`` request (``None`` elsewhere)."""

    __slots__ = ("op", "request_id", "pairs", "limit")

    def __init__(self, op: str, request_id: str,
                 pairs: Optional[List[Tuple[int, int]]] = None,
                 limit: Optional[int] = None):
        self.op = op
        self.request_id = request_id
        self.pairs = pairs if pairs is not None else []
        self.limit = limit

    def __repr__(self) -> str:
        return (f"Request(op={self.op!r}, id={self.request_id!r}, "
                f"pairs={len(self.pairs)})")


def decode_request(payload: str,
                   max_pairs: int = MAX_PAIRS_PER_REQUEST) -> Request:
    """Parse a request payload; :class:`ProtocolError` names what is
    wrong (op, id, arity, integer parse, batch size) so the typed
    ``ERR`` frame is actually useful to a client author."""
    fields = payload.split("\t")
    op = fields[0]
    if op not in REQUEST_OPS:
        raise ProtocolError(
            f"unknown op {op[:32]!r}; expected one of "
            f"{list(REQUEST_OPS)}")
    if len(fields) < 2 or not fields[1]:
        raise ProtocolError(f"{op} frame lacks a request id")
    request_id = fields[1]
    if "\n" in request_id or len(request_id) > 64:
        raise ProtocolError("request id must be <= 64 chars, no "
                            "newlines")
    if op in (_OP_PING, _OP_INFO, _OP_STATS):
        if len(fields) != 2:
            raise ProtocolError(
                f"{op} takes no fields beyond the id, got "
                f"{len(fields) - 2}")
        return Request(op, request_id)
    if op == _OP_TRACE:
        if len(fields) > 3:
            raise ProtocolError(
                f"{op} takes at most one span-count field, got "
                f"{len(fields) - 2}")
        limit = 32
        if len(fields) == 3:
            try:
                limit = _strict_int(fields[2])
            except ValueError:
                raise ProtocolError(
                    f"TRACE span count {fields[2][:32]!r} is not an "
                    "integer") from None
            if not 1 <= limit <= 4096:
                raise ProtocolError(
                    f"TRACE span count must be in [1, 4096], got "
                    f"{limit}")
        return Request(op, request_id, limit=limit)
    coords = fields[2:]
    if not coords:
        raise ProtocolError(f"{op} frame carries no pairs")
    if len(coords) % 2:
        raise ProtocolError(
            f"{op} frame has an odd number of endpoints "
            f"({len(coords)}); pairs are 'u<TAB>v'")
    if len(coords) // 2 > max_pairs:
        raise ProtocolError(
            f"request of {len(coords) // 2} pairs exceeds the "
            f"{max_pairs}-pair limit; split the batch")
    pairs: List[Tuple[int, int]] = []
    for i in range(0, len(coords), 2):
        try:
            pairs.append((_strict_int(coords[i]),
                          _strict_int(coords[i + 1])))
        except ValueError:
            raise ProtocolError(
                f"endpoint {coords[i][:32]!r}/{coords[i + 1][:32]!r} "
                f"is not an integer (pair #{i // 2})") from None
    return Request(op, request_id, pairs)


def encode_request(op: str, request_id: str,
                   pairs: Sequence[Tuple[int, int]] = (),
                   extra: Sequence[str] = ()) -> str:
    parts = [op, request_id]
    for u, v in pairs:
        parts.append(str(u))
        parts.append(str(v))
    parts.extend(extra)
    return "\t".join(parts)


# -- results -----------------------------------------------------------
def encode_route_result(route) -> str:
    """``weight,center,level,v0-v1-...`` — ``%.17g`` keeps float64
    exact, so the TCP path stays bit-identical to in-process serving."""
    center = -1 if route.tree_center is None else route.tree_center
    path = "-".join(map(str, route.path))
    return (f"{route.weight:.17g},{center},{route.found_level},"
            f"{path}")


def decode_route_result(field: str, source: int,
                        target: int) -> CompiledRoute:
    try:
        weight_s, center_s, level_s, path_s = field.split(",")
        path = [int(v) for v in path_s.split("-")]
        center = int(center_s)
        return CompiledRoute(
            source=source, target=target, path=path,
            weight=float(weight_s),
            tree_center=None if center < 0 else center,
            found_level=int(level_s))
    except (ValueError, IndexError):
        raise ProtocolError(
            f"malformed route result field {field[:64]!r}") from None


def encode_ok(request_id: str, result_fields: Sequence[str]) -> str:
    return "\t".join(["OK", request_id, *result_fields])


def encode_error(request_id: str, code: str, message: str) -> str:
    if code not in ERROR_CODES:
        code = "internal"
    # Tabs/newlines would corrupt the TSV shape of the frame itself.
    clean = message.replace("\t", " ").replace("\n", " ")[:512]
    return "\t".join(["ERR", request_id, code, clean])


class Response:
    """One decoded response frame (client side)."""

    __slots__ = ("ok", "request_id", "fields", "code", "message")

    def __init__(self, ok: bool, request_id: str, fields=(),
                 code: str = "", message: str = ""):
        self.ok = ok
        self.request_id = request_id
        self.fields = list(fields)
        self.code = code
        self.message = message


def decode_response(payload: str) -> Response:
    fields = payload.split("\t")
    if len(fields) >= 2 and fields[0] == "OK":
        return Response(True, fields[1], fields[2:])
    if len(fields) >= 4 and fields[0] == "ERR":
        return Response(False, fields[1], (), fields[2],
                        "\t".join(fields[3:]))
    raise ProtocolError(
        f"unparseable response frame {payload[:64]!r}")
