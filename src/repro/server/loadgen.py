"""Traffic load generator: open-loop and closed-loop drivers.

Benchmarking a serving front-end honestly needs *both* classic load
shapes:

* **closed-loop** — N concurrent clients, each issuing its next
  request only after the previous one returns (optionally after a
  think time).  Throughput is the system's self-paced capacity at that
  concurrency; latency can never explode because arrival slows with
  the server.
* **open-loop** — requests arrive by an external Poisson process at a
  target RPS regardless of completions, the shape real user traffic
  has.  Latency percentiles under open-loop load are the honest ones:
  queueing delay shows up instead of being absorbed by the arrival
  process.

Both modes draw their query pairs from seeded **pair mixes**
(:data:`PAIR_MIXES`): ``uniform`` over all pairs, ``hotspot`` with
Zipf-distributed sources (a few talkers dominate — the shape the
``source-hash`` sharding policy exists for), and ``repeated`` cycling
a small working set (cache-friendly; stresses coalescing dedup-free
fast paths).  Seeded, so every run replays the same request sequence.

Targets are duck-typed: anything with ``route_batch`` /
``estimate_batch`` coroutines — an in-process
:class:`~repro.server.broker.RequestBroker` or a
:class:`~repro.server.tcp.TrafficClient` per simulated client.  The
module is also runnable against a live server::

    python -m repro.server.loadgen --host 127.0.0.1 --port 8642 \\
        --mode closed --clients 16 --requests 50 --out report.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..exceptions import ParameterError
from ..telemetry.registry import MetricsRegistry
from .metrics import LatencyRecorder

#: Series the load generator registers — pinned by a regression test
#: so ``benchmarks/bench_traffic.py`` and the CLI print identical
#: names (they all read the same shared registry).
LOADGEN_SERIES = ("repro_loadgen_requests_total",
                  "repro_loadgen_latency_seconds")

#: Zipf exponent for the hotspot mix (s=1.1: heavy but not degenerate).
HOTSPOT_EXPONENT = 1.1

#: Working-set size of the repeated mix.
REPEATED_POOL = 32


# ----------------------------------------------------------------------
# Pair mixes
# ----------------------------------------------------------------------
def mix_uniform(n: int, rng: random.Random
                ) -> Callable[[], Tuple[int, int]]:
    """Sources and targets uniform over ``[0, n)``."""
    def draw() -> Tuple[int, int]:
        return rng.randrange(n), rng.randrange(n)
    return draw


def mix_hotspot(n: int, rng: random.Random
                ) -> Callable[[], Tuple[int, int]]:
    """Zipf-distributed sources (rank ``r`` with weight ``1/r^s``) over
    a seeded vertex permutation, uniform targets — per-user burst
    traffic where a few sources dominate."""
    ranks = list(range(n))
    rng.shuffle(ranks)
    weights = [1.0 / (r + 1) ** HOTSPOT_EXPONENT for r in range(n)]
    cum = []
    acc = 0.0
    for w in weights:
        acc += w
        cum.append(acc)

    def draw() -> Tuple[int, int]:
        x = rng.random() * acc
        # binary search over the cumulative weights
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cum[mid] < x:
                lo = mid + 1
            else:
                hi = mid
        return ranks[lo], rng.randrange(n)
    return draw


def mix_repeated(n: int, rng: random.Random
                 ) -> Callable[[], Tuple[int, int]]:
    """Cycle a small seeded working set of pairs — the cache-friendly
    extreme (duplicate pairs inside one coalescing window are common)."""
    pool = [(rng.randrange(n), rng.randrange(n))
            for _ in range(min(REPEATED_POOL, max(1, n)))]

    def draw() -> Tuple[int, int]:
        return pool[rng.randrange(len(pool))]
    return draw


#: Mix name -> factory(n, rng) -> draw().
PAIR_MIXES: Dict[str, Callable] = {
    "uniform": mix_uniform,
    "hotspot": mix_hotspot,
    "repeated": mix_repeated,
}


def make_mix(name: str, n: int, seed: int) -> Callable[[], Tuple[int, int]]:
    try:
        factory = PAIR_MIXES[name]
    except KeyError:
        raise ParameterError(
            f"unknown pair mix {name!r}; choose from "
            f"{sorted(PAIR_MIXES)}") from None
    return factory(n, random.Random(seed))


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@dataclass
class LoadReport:
    """One load run, JSON-able via :meth:`to_dict`."""

    mode: str                  #: "closed" or "open"
    op: str                    #: "route" or "estimate"
    mix: str
    seed: int
    requests: int = 0
    errors: int = 0
    duration_seconds: float = 0.0
    achieved_rps: float = 0.0
    target_rps: Optional[float] = None   #: open-loop only
    clients: Optional[int] = None        #: closed-loop only
    latency: Dict = field(default_factory=dict)
    #: The registry the run reported into (not serialized).
    registry: Optional[MetricsRegistry] = None

    def to_dict(self) -> Dict:
        out = {
            "mode": self.mode,
            "op": self.op,
            "mix": self.mix,
            "seed": self.seed,
            "requests": self.requests,
            "errors": self.errors,
            "duration_seconds": round(self.duration_seconds, 6),
            "achieved_rps": round(self.achieved_rps, 1),
            "latency": self.latency,
        }
        if self.target_rps is not None:
            out["target_rps"] = self.target_rps
        if self.clients is not None:
            out["clients"] = self.clients
        return out

    def format(self) -> str:
        lat = self.latency
        shape = (f"{self.clients} clients" if self.mode == "closed"
                 else f"{self.target_rps} rps target")
        return (f"[{self.mode}/{self.op}/{self.mix}] {shape}: "
                f"{self.requests} reqs in "
                f"{self.duration_seconds:.2f}s = "
                f"{self.achieved_rps:.0f} rps, p50 "
                f"{lat.get('p50_ms', 0):.2f}ms p95 "
                f"{lat.get('p95_ms', 0):.2f}ms p99 "
                f"{lat.get('p99_ms', 0):.2f}ms "
                f"({self.errors} errors)")


def _instruments(registry: Optional[MetricsRegistry], mode: str,
                 op: str, mix: str):
    """Loadgen telemetry on a shared (or fresh) registry.

    Returns ``(registry, recorder, ok, err)``: the recorder mirrors
    into ``repro_loadgen_latency_seconds`` and the counters are the
    ``outcome``-labeled children of ``repro_loadgen_requests_total`` —
    the exact series names in :data:`LOADGEN_SERIES`.
    """
    registry = registry if registry is not None else MetricsRegistry()
    requests = registry.counter(
        LOADGEN_SERIES[0], "load-generator requests by outcome",
        labelnames=("mode", "op", "mix", "outcome"))
    latency = registry.histogram(
        LOADGEN_SERIES[1], "load-generator request latency",
        labelnames=("mode", "op", "mix"))
    recorder = LatencyRecorder(
        instrument=latency.labels(mode=mode, op=op, mix=mix))
    ok = requests.labels(mode=mode, op=op, mix=mix, outcome="ok")
    err = requests.labels(mode=mode, op=op, mix=mix, outcome="error")
    return registry, recorder, ok, err


async def _issue(target, op: str, pair: Tuple[int, int],
                 recorder: LatencyRecorder, clock) -> bool:
    """One request round-trip; records latency, returns success."""
    start = clock()
    if op == "route":
        await target.route_batch([pair])
    else:
        await target.estimate_batch([pair])
    recorder.observe(clock() - start)
    return True


# ----------------------------------------------------------------------
# Closed loop
# ----------------------------------------------------------------------
async def run_closed_loop(target_factory, n: int, *,
                          clients: int = 16,
                          requests_per_client: int = 100,
                          op: str = "route", mix: str = "uniform",
                          seed: int = 0, think_ms: float = 0.0,
                          batch_size: int = 1,
                          registry: Optional[MetricsRegistry] = None
                          ) -> LoadReport:
    """N self-paced clients, each issuing ``requests_per_client``
    requests of ``batch_size`` pairs with ``think_ms`` pause between.

    ``target_factory`` is an async callable returning a per-client
    target (e.g. a fresh :class:`TrafficClient`, or the shared broker
    wrapped so ``aclose`` is a no-op).  Pass ``registry`` to report
    through a shared telemetry registry (series names in
    :data:`LOADGEN_SERIES`); a private one is created otherwise and
    returned on the report.
    """
    registry, recorder, ok_count, err_count = _instruments(
        registry, "closed", op, mix)
    errors = 0
    loop = asyncio.get_running_loop()
    clock = loop.time

    async def one_client(client_id: int) -> int:
        nonlocal errors
        draw = make_mix(mix, n, seed * 100003 + client_id)
        target = await target_factory()
        think = think_ms / 1000.0
        done = 0
        try:
            for _ in range(requests_per_client):
                pairs = [draw() for _ in range(batch_size)]
                start = clock()
                try:
                    if op == "route":
                        await target.route_batch(pairs)
                    else:
                        await target.estimate_batch(pairs)
                    recorder.observe(clock() - start)
                    ok_count.inc()
                    done += 1
                except Exception:
                    err_count.inc()
                    errors += 1
                if think:
                    await asyncio.sleep(think)
        finally:
            aclose = getattr(target, "aclose", None)
            if aclose is not None:
                await aclose()
        return done

    start = clock()
    counts = await asyncio.gather(
        *(one_client(c) for c in range(clients)))
    elapsed = max(clock() - start, 1e-9)
    total = sum(counts)
    return LoadReport(
        mode="closed", op=op, mix=mix, seed=seed, clients=clients,
        requests=total, errors=errors, duration_seconds=elapsed,
        achieved_rps=total / elapsed, latency=recorder.summary(),
        registry=registry)


# ----------------------------------------------------------------------
# Open loop
# ----------------------------------------------------------------------
async def run_open_loop(target_factory, n: int, *,
                        rps: float = 500.0,
                        total_requests: int = 1000,
                        op: str = "route", mix: str = "uniform",
                        seed: int = 0, connections: int = 4,
                        registry: Optional[MetricsRegistry] = None
                        ) -> LoadReport:
    """Poisson arrivals at ``rps``: inter-arrival gaps are seeded
    ``Expovariate(rps)`` draws, and every arrival fires as its own task
    whether or not earlier ones finished — queueing delay is *in* the
    measured latency, which is the point of open-loop load.

    ``connections`` targets are opened up front and arrivals round-robin
    over them (one multiplexed connection would serialize at the
    writer; per-arrival connections would measure connect cost).
    ``registry`` works as in :func:`run_closed_loop`.
    """
    registry, recorder, ok_count, err_count = _instruments(
        registry, "open", op, mix)
    errors = 0
    loop = asyncio.get_running_loop()
    clock = loop.time
    arrival_rng = random.Random(seed ^ 0x5EED)
    draw = make_mix(mix, n, seed)
    targets = [await target_factory() for _ in range(connections)]
    tasks: List[asyncio.Task] = []

    async def fire(target, pair) -> None:
        nonlocal errors
        try:
            await _issue(target, op, pair, recorder, clock)
            ok_count.inc()
        except Exception:
            err_count.inc()
            errors += 1

    start = clock()
    next_at = start
    try:
        for i in range(total_requests):
            next_at += arrival_rng.expovariate(rps)
            delay = next_at - clock()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(asyncio.ensure_future(
                fire(targets[i % connections], draw())))
        if tasks:
            await asyncio.gather(*tasks)
    finally:
        for target in targets:
            aclose = getattr(target, "aclose", None)
            if aclose is not None:
                await aclose()
    elapsed = max(clock() - start, 1e-9)
    done = total_requests - errors
    return LoadReport(
        mode="open", op=op, mix=mix, seed=seed, target_rps=rps,
        requests=done, errors=errors, duration_seconds=elapsed,
        achieved_rps=done / elapsed, latency=recorder.summary(),
        registry=registry)


# ----------------------------------------------------------------------
# Target factories
# ----------------------------------------------------------------------
def broker_targets(broker):
    """Share one in-process broker across all simulated clients."""
    class _Shared:
        route_batch = staticmethod(broker.route_batch)
        estimate_batch = staticmethod(broker.estimate_batch)

    async def factory():
        return _Shared()
    return factory


def tcp_targets(host: str = "127.0.0.1", port: int = 0,
                unix_path: Optional[str] = None):
    """One fresh protocol connection per simulated client."""
    from .tcp import TrafficClient

    async def factory():
        return await TrafficClient.connect(host, port, unix_path)
    return factory


# ----------------------------------------------------------------------
# CLI: drive a live server
# ----------------------------------------------------------------------
async def _main_async(args) -> Dict:
    from .tcp import TrafficClient

    factory = tcp_targets(args.host, args.port, args.unix)
    probe = await factory()
    info = await probe.info()
    await probe.aclose()
    n_key = f"{'routing' if args.op == 'route' else 'estimation'}.n"
    if n_key not in info:
        raise ParameterError(
            f"server does not serve {args.op!r} (INFO: {info})")
    n = int(info[n_key])
    registry = MetricsRegistry()
    if args.mode == "closed":
        report = await run_closed_loop(
            factory, n, clients=args.clients,
            requests_per_client=args.requests, op=args.op,
            mix=args.mix, seed=args.seed, think_ms=args.think_ms,
            batch_size=args.batch_size, registry=registry)
    else:
        report = await run_open_loop(
            factory, n, rps=args.rps, total_requests=args.requests,
            op=args.op, mix=args.mix, seed=args.seed,
            connections=args.connections, registry=registry)
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Drive a repro traffic server with synthetic load")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642)
    parser.add_argument("--unix", default=None,
                        help="unix socket path (overrides host/port)")
    parser.add_argument("--mode", choices=["closed", "open"],
                        default="closed")
    parser.add_argument("--op", choices=["route", "estimate"],
                        default="route")
    parser.add_argument("--mix", choices=sorted(PAIR_MIXES),
                        default="uniform")
    parser.add_argument("--clients", type=int, default=16,
                        help="closed-loop concurrent clients")
    parser.add_argument("--requests", type=int, default=100,
                        help="per-client (closed) or total (open)")
    parser.add_argument("--rps", type=float, default=500.0,
                        help="open-loop target arrival rate")
    parser.add_argument("--connections", type=int, default=4,
                        help="open-loop connection pool size")
    parser.add_argument("--think-ms", type=float, default=0.0)
    parser.add_argument("--batch-size", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None,
                        help="write the JSON report here")
    parser.add_argument("--print-metrics", action="store_true",
                        help="also print the run's telemetry series "
                             "(exposition text, same names the "
                             "benchmarks report)")
    args = parser.parse_args(argv)
    report = asyncio.run(_main_async(args))
    record = report.to_dict()
    record["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    print(json.dumps(record, indent=2))
    if args.print_metrics and report.registry is not None:
        print(report.registry.render(), end="")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
