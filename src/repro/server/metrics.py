"""Serving metrics for the async traffic front-end.

The broker's observable contract is latency and batching behaviour, so
both are first-class here:

* :class:`LatencyRecorder` — a bounded reservoir of per-request
  latencies with nearest-rank percentiles (p50/p95/p99).  Bounded so a
  long-lived server never grows without limit; the window (default
  65536 samples) is large enough that percentiles describe *recent*
  traffic, which is what an operator watches.
* :class:`BrokerMetrics` — the broker's counters: submissions,
  completions, failures, fused dispatches, the fused-batch-size
  histogram (exact counts — sizes are bounded by ``max_batch`` so the
  dict cannot grow past that), and a live queue-depth gauge wired to
  the broker's pending queues.

Everything is plain Python updated from the event loop thread — no
locks needed, and ``snapshot()`` returns a JSON-able dict so the CLI,
the load generator, and the benchmark all report the same numbers.
"""

from __future__ import annotations

import math
from collections import deque
from fractions import Fraction
from typing import Callable, Dict, List, Optional

#: Default bounded-reservoir size for per-request latencies.
DEFAULT_WINDOW = 65536

#: The percentiles every snapshot reports, in order.
PERCENTILES = (50.0, 95.0, 99.0)


def percentile(sorted_samples: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted, non-empty list.

    Nearest-rank (not interpolated) so a reported p99 is always a
    latency some request actually experienced.

    The rank ``ceil(n * q / 100)`` is computed in exact integer
    arithmetic: ``q`` is taken at its decimal face value (via
    ``Fraction(str(q))``), so e.g. ``q = 99.0`` over ``n = 100``
    samples is rank 99 exactly — never rank 100 through a float
    rounding of ``n * q / 100``.
    """
    if not sorted_samples:
        raise ValueError("percentile of an empty sample set")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    frac = Fraction(str(q)) * len(sorted_samples) / 100
    rank = max(1, math.ceil(frac))
    return sorted_samples[rank - 1]


class LatencyRecorder:
    """Bounded reservoir of latencies (seconds) with percentile report."""

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._samples: deque = deque(maxlen=window)
        self.count = 0          #: total observations (beyond the window)

    def observe(self, seconds: float) -> None:
        self._samples.append(seconds)
        self.count += 1

    def __len__(self) -> int:
        return len(self._samples)

    def summary(self) -> Dict[str, float]:
        """``{count, window, mean_ms, p50_ms, p95_ms, p99_ms, max_ms}``.

        ``count`` is the all-time observation total; ``window`` is how
        many samples the bounded reservoir currently holds — the
        population every other statistic here is computed over.  Keeping
        them separate stops an all-time count from masquerading as the
        sample size of window-scoped percentiles (zeros when nothing was
        observed yet).
        """
        out: Dict[str, float] = {"count": self.count,
                                 "window": len(self._samples)}
        if not self._samples:
            out.update({"mean_ms": 0.0, "max_ms": 0.0})
            out.update({f"p{int(q)}_ms": 0.0 for q in PERCENTILES})
            return out
        ordered = sorted(self._samples)
        out["mean_ms"] = round(
            sum(ordered) / len(ordered) * 1000.0, 4)
        out["max_ms"] = round(ordered[-1] * 1000.0, 4)
        for q in PERCENTILES:
            out[f"p{int(q)}_ms"] = round(
                percentile(ordered, q) * 1000.0, 4)
        return out


class BrokerMetrics:
    """Counters + latency window for one :class:`RequestBroker`."""

    def __init__(self, window: int = DEFAULT_WINDOW,
                 queue_depth: Optional[Callable[[], int]] = None) -> None:
        self.latency = LatencyRecorder(window)
        self.submitted = 0        #: submissions accepted into the queue
        self.completed = 0        #: submissions resolved successfully
        self.failed = 0           #: submissions resolved with an error
        self.cancelled = 0        #: submissions dropped by their caller
        self.dispatches = 0       #: fused backend calls issued
        self.fused_pairs = 0      #: total pairs across fused dispatches
        #: fused-batch size -> how many dispatches had exactly that many
        #: pairs; bounded by ``max_batch`` distinct keys.
        self.batch_size_hist: Dict[int, int] = {}
        self.swaps = 0            #: successful artifact hot-swaps
        self.generation = 0       #: routing-artifact generation gauge
        #: artifact generation -> fused windows served entirely by it;
        #: every window lands on exactly one generation (the zero-
        #: downtime invariant), so these counts sum to ``dispatches``.
        self.generation_windows: Dict[int, int] = {}
        self.swap_latency = LatencyRecorder(window)
        self._queue_depth = queue_depth or (lambda: 0)

    # -- recording (event-loop thread only) ----------------------------
    def record_submit(self) -> None:
        self.submitted += 1

    def record_dispatch(self, fused_size: int) -> None:
        self.dispatches += 1
        self.fused_pairs += fused_size
        self.batch_size_hist[fused_size] = \
            self.batch_size_hist.get(fused_size, 0) + 1

    def record_done(self, latency_seconds: float) -> None:
        self.completed += 1
        self.latency.observe(latency_seconds)

    def record_failure(self) -> None:
        self.failed += 1

    def record_cancelled(self) -> None:
        self.cancelled += 1

    def record_swap(self, latency_seconds: float,
                    generation: int) -> None:
        self.swaps += 1
        self.generation = generation
        self.swap_latency.observe(latency_seconds)

    def record_window_generation(self, generation: int) -> None:
        self.generation_windows[generation] = \
            self.generation_windows.get(generation, 0) + 1

    # -- reporting -----------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Submissions currently waiting for a window (live gauge)."""
        return self._queue_depth()

    def mean_fused_size(self) -> float:
        if not self.dispatches:
            return 0.0
        return self.fused_pairs / self.dispatches

    def snapshot(self) -> Dict:
        """One JSON-able dict with everything above."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "dispatches": self.dispatches,
            "fused_pairs": self.fused_pairs,
            "mean_fused_size": round(self.mean_fused_size(), 3),
            "queue_depth": self.queue_depth,
            "batch_size_hist": {str(k): v for k, v in
                                sorted(self.batch_size_hist.items())},
            "latency": self.latency.summary(),
            "swaps": self.swaps,
            "generation": self.generation,
            "generation_windows": {str(k): v for k, v in
                                   sorted(
                                       self.generation_windows.items())},
            "swap_latency": self.swap_latency.summary(),
        }
