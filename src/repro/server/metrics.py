"""Serving metrics for the async traffic front-end.

The broker's observable contract is latency and batching behaviour, so
both are first-class here:

* :class:`LatencyRecorder` — a bounded reservoir of per-request
  latencies with nearest-rank percentiles (p50/p95/p99).  Bounded so a
  long-lived server never grows without limit; the window (default
  65536 samples) is large enough that percentiles describe *recent*
  traffic, which is what an operator watches.  A recorder can mirror
  its observations into a registry :class:`~repro.telemetry.Histogram`
  so the same samples feed both the exact-percentile snapshot and the
  ``/metrics`` exposition.
* :class:`BrokerMetrics` — the broker's counters, now stored as
  instruments in a :class:`~repro.telemetry.MetricsRegistry` (a
  private one per broker by default; pass ``registry=`` to aggregate
  into a shared or the process-global one).  ``snapshot()`` reads the
  instruments back out and returns the exact same JSON-able dict
  schema as before the migration — pinned by
  ``tests/telemetry/test_schema_stability.py`` — plus the queue-wait /
  service-time decomposition recorded at the dispatch boundary.

Everything is updated from the event loop thread; instrument updates
take an uncontended lock (the registry is also read by the metrics
HTTP endpoint and ``STATS`` verb, which may race the loop).
"""

from __future__ import annotations

import math
from collections import deque
from fractions import Fraction
from typing import Callable, Dict, List, Optional

from ..telemetry.registry import MetricsRegistry

#: Default bounded-reservoir size for per-request latencies.
DEFAULT_WINDOW = 65536

#: The percentiles every snapshot reports, in order.
PERCENTILES = (50.0, 95.0, 99.0)


def percentile(sorted_samples: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted, non-empty list.

    Nearest-rank (not interpolated) so a reported p99 is always a
    latency some request actually experienced.

    The rank ``ceil(n * q / 100)`` is computed in exact integer
    arithmetic: ``q`` is taken at its decimal face value (via
    ``Fraction(str(q))``), so e.g. ``q = 99.0`` over ``n = 100``
    samples is rank 99 exactly — never rank 100 through a float
    rounding of ``n * q / 100``.
    """
    if not sorted_samples:
        raise ValueError("percentile of an empty sample set")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    frac = Fraction(str(q)) * len(sorted_samples) / 100
    rank = max(1, math.ceil(frac))
    return sorted_samples[rank - 1]


class LatencyRecorder:
    """Bounded reservoir of latencies (seconds) with percentile report.

    ``instrument`` (a registry histogram or one of its label children)
    receives a mirrored ``observe()`` per sample: the reservoir stays
    the source of exact nearest-rank percentiles — bucketed histograms
    can only approximate them — while the instrument gives scrapers
    the cumulative-bucket view.
    """

    def __init__(self, window: int = DEFAULT_WINDOW,
                 instrument: "Optional[object]" = None) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._samples: deque = deque(maxlen=window)
        self.count = 0          #: total observations (beyond the window)
        self._instrument = instrument

    def observe(self, seconds: float) -> None:
        self._samples.append(seconds)
        self.count += 1
        if self._instrument is not None:
            self._instrument.observe(seconds)

    def __len__(self) -> int:
        return len(self._samples)

    def summary(self) -> Dict[str, float]:
        """``{count, window, mean_ms, p50_ms, p95_ms, p99_ms, max_ms}``.

        ``count`` is the all-time observation total; ``window`` is how
        many samples the bounded reservoir currently holds — the
        population every other statistic here is computed over.  Keeping
        them separate stops an all-time count from masquerading as the
        sample size of window-scoped percentiles (zeros when nothing was
        observed yet).
        """
        out: Dict[str, float] = {"count": self.count,
                                 "window": len(self._samples)}
        if not self._samples:
            out.update({"mean_ms": 0.0, "max_ms": 0.0})
            out.update({f"p{int(q)}_ms": 0.0 for q in PERCENTILES})
            return out
        ordered = sorted(self._samples)
        out["mean_ms"] = round(
            sum(ordered) / len(ordered) * 1000.0, 4)
        out["max_ms"] = round(ordered[-1] * 1000.0, 4)
        for q in PERCENTILES:
            out[f"p{int(q)}_ms"] = round(
                percentile(ordered, q) * 1000.0, 4)
        return out


class BrokerMetrics:
    """Counters + latency windows for one :class:`RequestBroker`,
    backed by registry instruments.

    The latency triple decomposes at the dispatch boundary:
    ``latency`` (enqueue → demux, the combined number operators always
    had), ``queue_wait`` (enqueue → the fused window's dispatch), and
    ``service`` (dispatch → demux, shared by every submission fused
    into that window).  ``queue_wait + service ≈ latency`` per request
    up to the demux loop's bookkeeping.
    """

    def __init__(self, window: int = DEFAULT_WINDOW,
                 queue_depth: Optional[Callable[[], int]] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        reg = registry if registry is not None else MetricsRegistry()
        self.registry = reg
        self._events = reg.counter(
            "repro_broker_requests_total",
            "broker request lifecycle events", labelnames=("event",))
        self._dispatches = reg.counter(
            "repro_broker_dispatches_total", "fused backend calls issued")
        self._fused_pairs = reg.counter(
            "repro_broker_fused_pairs_total",
            "total pairs across fused dispatches")
        self._batch_sizes = reg.counter(
            "repro_broker_batch_size_total",
            "fused dispatches by exact batch size", labelnames=("size",))
        self._swaps = reg.counter(
            "repro_broker_swaps_total", "successful artifact hot-swaps")
        self._generation = reg.gauge(
            "repro_broker_generation", "routing-artifact generation")
        self._generation.set(0)   # scrapeable before the first swap
        self._generation_windows = reg.counter(
            "repro_broker_generation_windows_total",
            "fused windows served entirely by one artifact generation",
            labelnames=("generation",))
        self._depth_gauge = reg.gauge(
            "repro_broker_queue_depth",
            "submissions currently waiting for a window")
        self._queue_depth = queue_depth or (lambda: 0)
        self._depth_gauge.set_function(self._queue_depth)

        self.latency = LatencyRecorder(window, instrument=reg.histogram(
            "repro_broker_latency_seconds",
            "end-to-end request latency (enqueue to demux)"))
        self.queue_wait = LatencyRecorder(window, instrument=reg.histogram(
            "repro_broker_queue_wait_seconds",
            "time from enqueue to fused-window dispatch"))
        self.service = LatencyRecorder(window, instrument=reg.histogram(
            "repro_broker_service_seconds",
            "time from fused-window dispatch to demux"))
        self.swap_latency = LatencyRecorder(window, instrument=reg.histogram(
            "repro_broker_swap_latency_seconds",
            "hot-swap duration (request to all-worker rebind)"))

    # -- recording (event-loop thread only) ----------------------------
    def record_submit(self) -> None:
        self._events.labels(event="submitted").inc()

    def record_dispatch(self, fused_size: int) -> None:
        self._dispatches.inc()
        self._fused_pairs.inc(fused_size)
        self._batch_sizes.labels(size=str(fused_size)).inc()

    def record_done(self, latency_seconds: float,
                    queue_wait_seconds: Optional[float] = None,
                    service_seconds: Optional[float] = None) -> None:
        self._events.labels(event="completed").inc()
        self.latency.observe(latency_seconds)
        if queue_wait_seconds is not None:
            self.queue_wait.observe(queue_wait_seconds)
        if service_seconds is not None:
            self.service.observe(service_seconds)

    def record_failure(self) -> None:
        self._events.labels(event="failed").inc()

    def record_cancelled(self) -> None:
        self._events.labels(event="cancelled").inc()

    def record_swap(self, latency_seconds: float,
                    generation: int) -> None:
        self._swaps.inc()
        self._generation.set(generation)
        self.swap_latency.observe(latency_seconds)

    def record_window_generation(self, generation: int) -> None:
        self._generation_windows.labels(generation=str(generation)).inc()

    # -- reading the instruments back ----------------------------------
    def _event_count(self, event: str) -> int:
        return int(self._events.labels(event=event).value)

    @property
    def submitted(self) -> int:
        return self._event_count("submitted")

    @property
    def completed(self) -> int:
        return self._event_count("completed")

    @property
    def failed(self) -> int:
        return self._event_count("failed")

    @property
    def cancelled(self) -> int:
        return self._event_count("cancelled")

    @property
    def dispatches(self) -> int:
        return int(self._dispatches.value)

    @property
    def fused_pairs(self) -> int:
        return int(self._fused_pairs.value)

    @property
    def batch_size_hist(self) -> Dict[int, int]:
        """Fused-batch size -> dispatch count (rebuilt from the labeled
        counter children; bounded by ``max_batch`` distinct keys)."""
        return {int(values[0]): int(child.value) for values, child in
                self._batch_sizes.children().items()}

    @property
    def swaps(self) -> int:
        return int(self._swaps.value)

    @property
    def generation(self) -> int:
        return int(self._generation.value)

    @property
    def generation_windows(self) -> Dict[int, int]:
        return {int(values[0]): int(child.value) for values, child in
                self._generation_windows.children().items()}

    # -- reporting -----------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Submissions currently waiting for a window (live gauge)."""
        return self._queue_depth()

    def mean_fused_size(self) -> float:
        dispatches = self.dispatches
        if not dispatches:
            return 0.0
        return self.fused_pairs / dispatches

    def snapshot(self) -> Dict:
        """One JSON-able dict with everything above.

        Schema-stable across the registry migration (the pre-telemetry
        keys are unchanged); ``queue_wait`` and ``service`` are the
        dispatch-boundary decomposition of ``latency``.
        """
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "dispatches": self.dispatches,
            "fused_pairs": self.fused_pairs,
            "mean_fused_size": round(self.mean_fused_size(), 3),
            "queue_depth": self.queue_depth,
            "batch_size_hist": {str(k): v for k, v in
                                sorted(self.batch_size_hist.items())},
            "latency": self.latency.summary(),
            "queue_wait": self.queue_wait.summary(),
            "service": self.service.summary(),
            "swaps": self.swaps,
            "generation": self.generation,
            "generation_windows": {str(k): v for k, v in
                                   sorted(
                                       self.generation_windows.items())},
            "swap_latency": self.swap_latency.summary(),
        }
