"""Request broker: micro-batch coalescing over a warm serving backend.

`RouterPool` (PR 4) scales one *big* batch across processes, but real
traffic arrives as a stream of small, concurrent lookups.  The broker is
the missing front half: many asyncio clients each submit one pair or a
small batch (``await broker.route(s, t)``), the broker coalesces
everything that arrives inside a micro-batch window into **one** fused
``route_many``/``estimate_many`` call, and demultiplexes the results
back to each awaiting future in that client's input order.

Why this wins: every dispatch pays fixed costs (an executor hop, and —
with a pool backend — sharding plus queue round-trips) that dwarf the
per-pair serving cost.  Coalescing amortizes those fixed costs over the
whole window, so throughput under many small clients approaches the big
pre-assembled-batch rate; ``benchmarks/bench_traffic.py`` records the
ratio.

Design points, in contract order:

* **Bit-identity.**  A fused window is served by the *same*
  ``route_many``/``estimate_many`` the backend already has, and those
  are per-query deterministic — so any window shape returns exactly the
  bytes in-process serving would.  Pinned by ``tests/server/``.
* **Backpressure.**  The pending queue is bounded (``max_pending``
  submissions); when it fills, ``await broker.route(...)`` blocks *the
  submitting client* until a window drains.  Slow consumers wait;
  memory never grows without bound.
* **Validation at the door.**  Pairs are validated at submit time with
  the same ``validate_pairs`` prepass every other serve path uses —
  a malformed request raises immediately in the caller and can never
  poison a fused window that carries other clients' queries.
* **Per-window failure domain.**  If the backend itself raises
  mid-window (artifact bug, dead pool worker), every submission in that
  window gets the error; queued windows behind it are unaffected.
* **Cancellation.**  A client abandoning its future (``asyncio``
  cancellation) is dropped at dispatch time — its pairs are excluded
  from the fused call and nobody else notices.
* **Graceful shutdown.**  ``aclose()`` rejects new submissions with
  :class:`~repro.exceptions.ServingError`, flushes every queued window,
  waits for in-flight dispatches, then closes owned backends (e.g. a
  pool opened by ``SchemePipeline.serve_async``).

The broker is loop-bound: it binds to the running event loop on first
use, and all its methods must be awaited from that loop.  Backends are
driven on a single worker thread (``run_in_executor``), which both
keeps the event loop responsive during a fused call and serializes
dispatches FIFO — a pool backend serializes batches internally anyway.
"""

from __future__ import annotations

import asyncio
import operator
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

from ..exceptions import ParameterError, ServingError
from ..telemetry.trace import get_tracer, maybe_span, \
    sampled_request_tracer
from .metrics import BrokerMetrics

#: Queue sentinel: "no more submissions, flush and exit".
_SHUTDOWN = object()

_ROUTE = "route"
_ESTIMATE = "estimate"


class _Submission:
    """One client request: its pairs, its future, its clock, and (when
    tracing is on) its ``serve.queue`` span — started at enqueue on the
    submitter's task, finished at dispatch on the lane task (an
    explicit cross-task link; contextvars do not cross tasks)."""

    __slots__ = ("pairs", "future", "enqueued_at", "span")

    def __init__(self, pairs, future, enqueued_at, span=None):
        self.pairs = pairs
        self.future = future
        self.enqueued_at = enqueued_at
        self.span = span


class _Lane:
    """One coalescing lane (route or estimate): a bounded queue plus
    the dispatcher task draining it window by window."""

    __slots__ = ("name", "serve", "queue", "task", "pending")

    def __init__(self, name, serve, max_pending):
        self.name = name
        #: blocking callable(pairs) -> (generation, results); rebound
        #: atomically by an in-process hot swap
        self.serve = serve
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=max_pending)
        self.task: Optional[asyncio.Task] = None
        #: unresolved submission futures, for drain(); each removes
        #: itself on completion
        self.pending: set = set()


def _tagged_serve(backend, method: str, generation: int):
    """A blocking ``callable(pairs) -> (generation, results)``.

    Pool backends expose a generation-tagged validated entry point —
    the pool's own counter is the attribution authority there, captured
    under its serve lock.  Plain artifacts get a closure pinning the
    broker-assigned ``generation``: a hot swap installs a *new* closure
    (and artifact) atomically, so a window mid-dispatch keeps serving —
    and reporting — the old generation while new windows pick up the
    new one.  Dispatch goes through the backend's ``*_validated`` entry
    point when it has one: the broker already ran the exact same
    prepass per submission, so fused windows skip a second O(window)
    validation sweep.
    """
    tagged = getattr(backend, f"_{method}_validated_tagged", None)
    if tagged is not None:
        return tagged
    base = getattr(backend, f"_{method}_validated", None) \
        or getattr(backend, method)

    def serve(pairs):
        return generation, base(pairs)

    return serve


class RequestBroker:
    """Coalesce concurrent small requests into fused backend batches.

    >>> broker = RequestBroker(router=compiled, max_batch=128,
    ...                        max_wait_ms=2.0)
    >>> async with broker:
    ...     route = await broker.route(3, 57)
    ...     routes = await broker.route_batch([(0, 9), (4, 4)])

    Parameters
    ----------
    router:
        Anything with ``route_many(pairs)`` + ``validate_pairs(pairs)``
        — a :class:`~repro.core.compiled.CompiledScheme` or a warm
        :class:`~repro.serving.RouterPool`.  ``None`` disables the
        route lane.
    estimator:
        Same for ``estimate_many`` — a ``CompiledEstimation`` or an
        estimation pool.  ``None`` disables the estimate lane.
    max_batch:
        Fused-window pair budget: a window closes as soon as it holds
        this many pairs.  ``1`` disables coalescing (every submission
        dispatches alone) — the benchmark's baseline mode.
    max_wait_ms:
        How long a window stays open for more arrivals after its first
        pair, in milliseconds.  ``0`` means "grab whatever is already
        queued, never sleep": minimum latency, coalescing only under
        concurrency pressure.
    max_pending:
        Bound on queued submissions per lane — the backpressure knob.
        Submitters beyond it wait in ``queue.put`` order.
    own:
        Backends the broker should ``close()`` on ``aclose()`` (the
        pipeline hands pools it opened here).
    metrics_window:
        Latency-reservoir size for :class:`BrokerMetrics`.
    registry:
        Optional :class:`~repro.telemetry.MetricsRegistry` the broker's
        instruments register into (shared with a metrics endpoint or
        the pools); default is a private registry per broker.
    """

    def __init__(self, router=None, estimator=None, *,
                 max_batch: int = 128, max_wait_ms: float = 2.0,
                 max_pending: int = 1024, own: Sequence = (),
                 metrics_window: int = 65536, registry=None) -> None:
        if router is None and estimator is None:
            raise ParameterError(
                "RequestBroker needs a router and/or an estimator "
                "backend")
        for backend, methods in ((router, ("route_many",)),
                                 (estimator, ("estimate_many",))):
            if backend is None:
                continue
            for name in methods + ("validate_pairs",):
                if not callable(getattr(backend, name, None)):
                    raise ParameterError(
                        f"broker backend {type(backend).__name__} "
                        f"lacks a callable {name}()")
        if max_batch < 1:
            raise ParameterError(
                f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ParameterError(
                f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if max_pending < 1:
            raise ParameterError(
                f"max_pending must be >= 1, got {max_pending}")
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait_ms) / 1000.0
        self._router = router
        self._estimator = estimator
        self._own = list(own)
        self._closed = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        #: Routing-artifact generation as this broker knows it: the
        #: backend pool's counter, or the broker's own for in-process
        #: backends.  Bumped by :meth:`swap_router`.
        self._router_generation = getattr(router, "generation", 0)
        self._lanes = {}
        if router is not None:
            serve = _tagged_serve(router, "route_many",
                                  self._router_generation)
            self._lanes[_ROUTE] = _Lane(_ROUTE, serve, max_pending)
        if estimator is not None:
            serve = _tagged_serve(estimator, "estimate_many", 0)
            self._lanes[_ESTIMATE] = _Lane(_ESTIMATE, serve,
                                           max_pending)
        self.metrics = BrokerMetrics(
            metrics_window,
            queue_depth=lambda: sum(lane.queue.qsize()
                                    for lane in self._lanes.values()),
            registry=registry)
        # One worker thread: fused dispatches run off-loop (the event
        # loop keeps accepting arrivals mid-dispatch, which is where
        # the next window's coalescing comes from) and strictly FIFO.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-broker")

    # -- introspection -------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def serves_routing(self) -> bool:
        return _ROUTE in self._lanes

    @property
    def serves_estimation(self) -> bool:
        return _ESTIMATE in self._lanes

    @property
    def router(self):
        return self._router

    @property
    def estimator(self):
        return self._estimator

    def __repr__(self) -> str:
        kinds = "+".join(sorted(self._lanes))
        state = "closed" if self._closed else "open"
        return (f"RequestBroker({kinds}, max_batch={self.max_batch}, "
                f"max_wait_ms={self.max_wait * 1000:g}, {state})")

    # -- public API ----------------------------------------------------
    async def route(self, source: int, target: int):
        """One routing lookup; returns a ``CompiledRoute``."""
        return (await self.route_batch([(source, target)]))[0]

    async def route_batch(self, pairs: Sequence[Tuple[int, int]]
                          ) -> List:
        """A small client batch of routing lookups, served fused with
        whatever else the window collects; results in input order."""
        return await self._submit(_ROUTE, self._router, pairs)

    async def estimate(self, u: int, v: int) -> float:
        """One distance estimate (Algorithm 2)."""
        return (await self.estimate_batch([(u, v)]))[0]

    async def estimate_batch(self, pairs: Sequence[Tuple[int, int]]
                             ) -> List[float]:
        """A small client batch of distance estimates."""
        return await self._submit(_ESTIMATE, self._estimator, pairs)

    # -- hot swap ------------------------------------------------------
    @property
    def router_generation(self) -> int:
        """Generation of the routing artifact currently serving."""
        return self._router_generation

    async def swap_router(self, artifact) -> float:
        """Hot-swap the routing artifact with zero dropped windows.

        Returns the swap latency in seconds.  In-flight fused windows
        complete on the old generation; every window dispatched after
        the swap serves on the new one — no window ever mixes
        generations (each window's serve callable and the pool's
        artifact swap both switch atomically with respect to window
        boundaries).  The swap and the windows share the broker's
        single dispatch thread, so ordering is strictly FIFO: windows
        queued before the swap drain first.

        With a :class:`~repro.serving.RouterPool` backend this
        delegates to :meth:`RouterPool.swap` (workers re-attach the new
        artifact's shared buffers); with an in-process artifact it
        atomically rebinds the lane to the new artifact.  Metrics
        record the swap count, latency, and per-generation window
        counts.
        """
        if self._closed:
            raise ServingError("cannot swap the router of a closed "
                               "broker")
        lane = self._lanes.get(_ROUTE)
        if lane is None:
            raise ParameterError("this broker has no routing backend "
                                 "to swap")
        self._ensure_started()
        loop = self._loop
        router = self._router
        swap_span = maybe_span("broker.swap",
                               attrs={"backend": type(router).__name__})
        if callable(getattr(router, "swap", None)):
            # Pool backend: the pool swaps in place; the lane's serve
            # callable (bound to the pool) stays valid, and the pool's
            # generation counter is the attribution authority.  Runs on
            # the broker's own dispatch thread, strictly FIFO with the
            # fused windows.
            swap_call = router.swap
            if get_tracer() is not None:
                # The pool swap runs on the dispatch thread, where the
                # contextvar chain is empty — link its span explicitly.
                def swap_call(art, _swap=router.swap,
                              _parent=swap_span):
                    return _swap(art, parent_span=_parent)
            try:
                latency = await loop.run_in_executor(
                    self._executor, swap_call, artifact)
            except BaseException as exc:
                swap_span.finish(error=type(exc).__name__)
                raise
            generation = router.generation
        else:
            for name in ("route_many", "validate_pairs"):
                if not callable(getattr(artifact, name, None)):
                    raise ParameterError(
                        f"swap_router needs an artifact with a "
                        f"callable {name}(), got "
                        f"{type(artifact).__name__}")
            start = loop.time()
            generation = self._router_generation + 1
            # Atomic rebinds on the event-loop thread: _dispatch reads
            # lane.serve on this same thread, so a window is either
            # entirely old or entirely new.
            lane.serve = _tagged_serve(artifact, "route_many",
                                       generation)
            self._router = artifact
            latency = loop.time() - start
        self._router_generation = generation
        self.metrics.record_swap(latency, generation)
        swap_span.finish(generation=generation,
                         swap_latency_s=round(latency, 6))
        return latency

    # -- submission ----------------------------------------------------
    async def _submit(self, kind: str, backend, pairs) -> List:
        if self._closed:
            raise ServingError(
                f"cannot submit {kind} requests to a closed broker")
        lane = self._lanes.get(kind)
        if lane is None:
            raise ParameterError(
                f"this broker has no {kind} backend")
        pairs = list(pairs)
        if not pairs:
            return []
        # Same validation authority as every other serve path; raises
        # in *this* caller, before anything enters a shared window.
        backend.validate_pairs(pairs)
        index = operator.index
        pairs = [(index(u), index(v)) for u, v in pairs]
        self._ensure_started()
        loop = self._loop
        sub = _Submission(pairs, loop.create_future(), loop.time())
        # Head sampling: under a TrafficServer the serve.request span
        # already made the decision (it is — or isn't — in this task's
        # context); a direct broker call decides here.  serve.submit
        # covers the enqueue (incl. backpressure waiting); its
        # serve.queue child is finished by the lane task at dispatch
        # time — the explicit cross-task link.
        tracer = sampled_request_tracer()
        submit_span = None
        if tracer is not None:
            submit_span = tracer.span(
                "serve.submit",
                attrs={"lane": kind, "pairs": len(pairs)})
            sub.span = submit_span.child("serve.queue")
        lane.pending.add(sub.future)
        sub.future.add_done_callback(lane.pending.discard)
        self.metrics.record_submit()
        try:
            await lane.queue.put(sub)    # backpressure point
        except asyncio.CancelledError:
            # Cancelled while blocked on backpressure: the submission
            # never entered the queue, so resolve its future here —
            # otherwise it stays in lane.pending and drain() waits on
            # it forever.
            sub.future.cancel()
            self.metrics.record_cancelled()
            if submit_span is not None:
                sub.span.finish(error="cancelled")
                submit_span.finish(error="cancelled")
            raise
        if submit_span is not None:
            submit_span.finish()
        if self._closed and not sub.future.done():
            # Raced past aclose(): the dispatcher may already have
            # flushed and exited, so fail deterministically instead of
            # awaiting a future nobody will resolve.
            sub.future.cancel()
            raise ServingError(
                f"broker closed while the {kind} request was queued")
        try:
            return await sub.future
        except asyncio.CancelledError:
            self.metrics.record_cancelled()
            raise

    def _ensure_started(self) -> None:
        """Bind to the running loop and start lane dispatchers once."""
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
        elif self._loop is not loop:
            raise ServingError(
                "RequestBroker is bound to another event loop; create "
                "one broker per loop")
        for lane in self._lanes.values():
            if lane.task is None:
                lane.task = loop.create_task(
                    self._run_lane(lane), name=f"broker-{lane.name}")

    # -- coalescing dispatcher -----------------------------------------
    async def _run_lane(self, lane: _Lane) -> None:
        """Drain the lane queue window by window until the sentinel."""
        queue = lane.queue
        while True:
            first = await queue.get()
            if first is _SHUTDOWN:
                return
            batch = [first]
            total = len(first.pairs)
            stop = False
            if total < self.max_batch and self.max_wait > 0:
                deadline = self._loop.time() + self.max_wait
                while total < self.max_batch:
                    remaining = deadline - self._loop.time()
                    if remaining <= 0:
                        break
                    try:
                        nxt = await asyncio.wait_for(queue.get(),
                                                     remaining)
                    except asyncio.TimeoutError:
                        break
                    if nxt is _SHUTDOWN:
                        stop = True
                        break
                    batch.append(nxt)
                    total += len(nxt.pairs)
            else:
                # max_wait == 0 (or the first submission already fills
                # the window): no sleeping — only fuse what is queued
                # right now.
                while total < self.max_batch:
                    try:
                        nxt = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if nxt is _SHUTDOWN:
                        stop = True
                        break
                    batch.append(nxt)
                    total += len(nxt.pairs)
            await self._dispatch(lane, batch)
            if stop:
                return

    async def _dispatch(self, lane: _Lane,
                        batch: List[_Submission]) -> None:
        """Fuse one window, serve it off-loop, demultiplex results.

        The dispatch boundary is where the latency decomposition is
        recorded: everything before ``dispatch_start`` is queue-wait
        (per submission), everything after is service time (shared by
        the whole fused window).
        """
        live = [sub for sub in batch if not sub.future.done()]
        if not live:
            for sub in batch:
                if sub.span is not None:
                    sub.span.finish(error="cancelled")
            return
        fused: List[Tuple[int, int]] = []
        for sub in live:
            fused.extend(sub.pairs)
        self.metrics.record_dispatch(len(fused))
        dispatch_start = self._loop.time()
        # Span bookkeeping: the window span parents to the first
        # *sampled* submission's queue span (one connected trace per
        # sampled request; other sampled submissions in the window
        # link via their own queue spans), and each queue span ends
        # now with its measured wait.  Windows with no sampled
        # submission cost nothing — that is the sampling contract.
        dispatch_span = None
        parent = next((sub.span for sub in live
                       if sub.span is not None), None)
        if parent is not None:
            dispatch_span = parent.child(
                "serve.dispatch",
                {"lane": lane.name, "fused_size": len(fused),
                 "submissions": len(live)})
        for sub in batch:
            if sub.span is None:
                continue
            if sub.future.done():
                sub.span.finish(error="cancelled")
            else:
                sub.span.finish(queue_wait_s=round(
                    dispatch_start - sub.enqueued_at, 6))
        # lane.serve is captured here, before the executor hop: an
        # in-process swap rebinding it mid-window cannot split the
        # window across artifacts.
        serve = lane.serve
        if dispatch_span is not None:
            def serve(pairs, _serve=serve, _parent=dispatch_span):
                # Executor thread: contextvars don't follow, so the
                # worker span links to its parent explicitly.
                worker_span = _parent.child("serve.worker")
                try:
                    return _serve(pairs)
                finally:
                    worker_span.finish()
        try:
            generation, results = await self._loop.run_in_executor(
                self._executor, serve, fused)
        except Exception as exc:
            # Window-scoped failure: every submission in this window
            # shares the cause; the lane keeps serving the next one.
            if dispatch_span is not None:
                dispatch_span.finish(error=type(exc).__name__)
            for sub in live:
                if not sub.future.done():
                    self.metrics.record_failure()
                    sub.future.set_exception(exc)
            return
        if lane.name == _ROUTE:
            self.metrics.record_window_generation(generation)
        demux_span = (dispatch_span.child("serve.demux")
                      if dispatch_span is not None else None)
        offset = 0
        now = self._loop.time()
        service = now - dispatch_start
        for sub in live:
            chunk = results[offset:offset + len(sub.pairs)]
            offset += len(sub.pairs)
            if not sub.future.done():
                sub.future.set_result(chunk)
                self.metrics.record_done(
                    now - sub.enqueued_at,
                    queue_wait_seconds=dispatch_start - sub.enqueued_at,
                    service_seconds=service)
        if demux_span is not None:
            demux_span.finish()
            dispatch_span.finish(generation=generation)

    # -- lifecycle -----------------------------------------------------
    async def drain(self) -> None:
        """Wait until every currently outstanding submission has
        resolved (without closing).  Useful between load phases."""
        futures = [fut for lane in self._lanes.values()
                   for fut in list(lane.pending)]
        if futures:
            await asyncio.gather(*futures, return_exceptions=True)

    async def aclose(self) -> None:
        """Graceful shutdown: reject new submissions, flush every
        queued window, then close owned backends.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        started = [lane for lane in self._lanes.values()
                   if lane.task is not None]
        for lane in started:
            await lane.queue.put(_SHUTDOWN)
        if started:
            await asyncio.gather(*(lane.task for lane in started))
        # Submissions that raced behind the sentinel can never be
        # served; fail them deterministically.
        for lane in self._lanes.values():
            while True:
                try:
                    sub = lane.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if sub is _SHUTDOWN or sub.future.done():
                    continue
                self.metrics.record_failure()
                sub.future.set_exception(ServingError(
                    "broker closed before this request was served"))
        self._executor.shutdown(wait=True)
        for backend in self._own:
            close = getattr(backend, "close", None)
            if callable(close):
                close()
        self._own = []

    async def __aenter__(self) -> "RequestBroker":
        return self

    async def __aexit__(self, *_exc) -> bool:
        await self.aclose()
        return False


def pooled_broker(router=None, estimator=None, *, workers: int = 0,
                  pool_kwargs: Optional[dict] = None, registry=None,
                  **broker_kwargs) -> RequestBroker:
    """Construct a broker, optionally over fresh ``RouterPool``s.

    The one place the wrap-in-pools-then-broker sequence lives (both
    ``SchemePipeline.serve_async`` and the CLI ``serve`` path call
    it): with ``workers > 0`` each given artifact is wrapped in a
    :class:`~repro.serving.RouterPool` the broker *owns* (closed by
    ``aclose()``); any failure mid-construction closes the pools
    already opened instead of leaving orphaned worker processes.

    ``registry`` (optional) is threaded through to both the broker and
    the pools, so one :class:`~repro.telemetry.MetricsRegistry` holds
    the whole serve path — this is what ``--metrics-port`` exposes.
    """
    from ..serving import RouterPool

    own = []
    try:
        if workers:
            kwargs = dict(pool_kwargs or {})
            if registry is not None:
                kwargs.setdefault("registry", registry)
            if router is not None:
                router = RouterPool(router, workers=workers,
                                    role="route", **kwargs)
                own.append(router)
            if estimator is not None:
                estimator = RouterPool(estimator, workers=workers,
                                       role="estimate", **kwargs)
                own.append(estimator)
        return RequestBroker(router=router, estimator=estimator,
                             own=own, registry=registry,
                             **broker_kwargs)
    except BaseException:
        for pool in own:
            pool.close()
        raise
