"""Asyncio traffic server + client for the length-prefixed TSV protocol.

:class:`TrafficServer` fronts one :class:`RequestBroker` with
``asyncio.start_server`` (TCP) or ``asyncio.start_unix_server``
(unix-domain socket), so non-Python clients can drive the warm pool
with nothing but a socket and ``struct``.  Each connection reads
frames in a loop; every request becomes a task awaiting the broker, so
one connection can keep many requests in flight and the broker's
micro-batch window sees *all* connections' traffic at once — the
server is itself a coalescing funnel, not a per-connection pipeline.

Error containment (pinned by ``tests/server/test_server_fuzz.py``):

* a malformed-but-framed request (bad op, odd arity, non-integer,
  oversized batch, non-UTF8 payload) gets a typed ``ERR`` frame and
  the connection keeps serving;
* a frame that destroys framing (oversized declared length, truncated
  stream) gets a final ``ERR`` with id ``-`` and the connection closes
  — the *server* and every other connection stay up;
* backend errors map to ``ERR`` codes: ``parameter`` for invalid
  queries, ``serving`` for shutdown/pool death, ``internal`` for
  anything unexpected.

Graceful shutdown: :meth:`TrafficServer.shutdown` (wired to
SIGINT/SIGTERM by :meth:`install_signal_handlers`) stops accepting
connections, lets in-flight requests drain through the broker's
flush, answers anything submitted after the cut with ``ERR serving``,
then closes the broker (which closes owned pools, unlinking shm).
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
from typing import Dict, List, Optional

from ..exceptions import ParameterError, ProtocolError, ReproError, \
    ServingError
from ..telemetry.http import MetricsHTTPServer
from ..telemetry.trace import NOOP_SPAN, get_tracer, maybe_span
from . import protocol
from .broker import RequestBroker
from .protocol import FramePayloadError, Request

#: How long shutdown waits for in-flight connection tasks.
_DRAIN_TIMEOUT = 10.0


class TrafficServer:
    """Serve a :class:`RequestBroker` over TCP or a unix socket.

    >>> server = TrafficServer(broker, host="127.0.0.1", port=0)
    >>> await server.start()          # port 0 -> kernel picks; see .port
    >>> await server.serve_forever()  # returns after .shutdown()

    Parameters
    ----------
    broker:
        The :class:`RequestBroker` to serve.  The server owns it:
        :meth:`shutdown` closes it (set ``own_broker=False`` to keep
        it alive, e.g. when tests share one broker across servers).
    host / port:
        TCP listen address; ``port=0`` lets the kernel choose (read it
        back from :attr:`port`).  Ignored when ``unix_path`` is given.
    unix_path:
        Serve on a unix-domain socket at this path instead of TCP.
    max_pairs:
        Per-request pair cap handed to the protocol decoder.
    metrics_port:
        When set, also serve HTTP ``GET /metrics`` (Prometheus text
        exposition of :attr:`registry`) and ``GET /healthz`` on this
        port (``0`` = kernel-assigned; read back from
        :attr:`metrics_port`).  ``None`` (default) disables the
        endpoint.
    registry:
        The :class:`~repro.telemetry.MetricsRegistry` the endpoint and
        the ``STATS`` verb expose; defaults to the broker's own.
    """

    def __init__(self, broker: RequestBroker, host: str = "127.0.0.1",
                 port: int = 0, unix_path: Optional[str] = None,
                 max_pairs: int = protocol.MAX_PAIRS_PER_REQUEST,
                 own_broker: bool = True,
                 metrics_port: Optional[int] = None,
                 registry=None) -> None:
        self.broker = broker
        self._host = host
        self._port = port
        self._unix_path = unix_path
        self._max_pairs = max_pairs
        self._own_broker = own_broker
        self.registry = (registry if registry is not None
                         else broker.metrics.registry)
        self._metrics_port = metrics_port
        self._metrics_server: Optional[MetricsHTTPServer] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: set = set()
        self._shutting_down = asyncio.Event()
        self._shutdown_done = asyncio.Event()
        self._signal_tasks: set = set()
        self.connections_served = 0
        self.frames_served = 0

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> "TrafficServer":
        if self._server is not None:
            raise ServingError("server already started")
        if self._unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self._unix_path)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self._host,
                port=self._port)
        if self._metrics_port is not None:
            self._metrics_server = await MetricsHTTPServer(
                self.registry,
                host=self._host if self._unix_path is None
                else "127.0.0.1",
                port=self._metrics_port,
                health_fn=self._health_fields).start()
        return self

    @property
    def port(self) -> Optional[int]:
        """The bound TCP port (``None`` for unix sockets)."""
        if self._server is None or self._unix_path is not None:
            return None
        return self._server.sockets[0].getsockname()[1]

    @property
    def metrics_port(self) -> Optional[int]:
        """The bound metrics HTTP port (``None`` when disabled)."""
        if self._metrics_server is None:
            return None
        return self._metrics_server.port

    def _health_fields(self) -> Dict:
        fields: Dict = {
            "shutting_down": self._shutting_down.is_set(),
            "queue_depth": self.broker.metrics.queue_depth,
            "connections_served": self.connections_served,
        }
        if self.broker.serves_routing:
            fields["generation"] = self.broker.router_generation
        return fields

    @property
    def address(self) -> str:
        if self._unix_path is not None:
            return f"unix:{self._unix_path}"
        return f"{self._host}:{self.port}"

    def install_signal_handlers(self) -> None:
        """SIGINT/SIGTERM -> graceful :meth:`shutdown` (idempotent).

        The shutdown task is kept strongly referenced until done —
        asyncio only holds tasks weakly, and a GC'd shutdown would
        strand the drain halfway.
        """
        loop = asyncio.get_running_loop()

        def on_signal(sig: signal.Signals) -> None:
            task = asyncio.ensure_future(
                self.shutdown(reason=f"signal {sig.name}"))
            self._signal_tasks.add(task)
            task.add_done_callback(self._signal_tasks.discard)

        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, on_signal, sig)

    async def serve_forever(self) -> None:
        """Serve until a :meth:`shutdown` has *completed* (drain
        included), so callers can report/exit the moment it returns."""
        if self._server is None:
            await self.start()
        await self._shutdown_done.wait()

    async def shutdown(self, reason: str = "") -> None:
        """Stop accepting, drain in-flight requests, close the broker.

        Established-but-idle connections are cancelled after the
        listener closes: their handlers sit in ``read_frame`` forever
        otherwise (each handler still drains its own in-flight request
        tasks from its cleanup path before exiting).  Concurrent and
        repeated calls await the one real shutdown.
        """
        if self._shutting_down.is_set():
            await self._shutdown_done.wait()
            return
        self._shutting_down.set()
        try:
            if self._metrics_server is not None:
                await self._metrics_server.aclose()
                self._metrics_server = None
            if self._server is not None:
                self._server.close()
            if self._unix_path is not None:
                try:
                    os.unlink(self._unix_path)
                except OSError:
                    pass
            if self._conn_tasks:
                for task in list(self._conn_tasks):
                    task.cancel()
                done, pending = await asyncio.wait(
                    self._conn_tasks, timeout=_DRAIN_TIMEOUT)
                for task in pending:  # pragma: no cover - hung conn
                    task.cancel()
            if self._server is not None:
                # after the handlers above finished, so this returns
                # promptly on every Python (3.12.1+ waits for them)
                await self._server.wait_closed()
            if self._own_broker:
                await self.broker.aclose()
        finally:
            self._shutdown_done.set()

    async def __aenter__(self) -> "TrafficServer":
        return await self.start()

    async def __aexit__(self, *_exc) -> bool:
        await self.shutdown()
        return False

    # -- connection handling -------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self.connections_served += 1
        write_lock = asyncio.Lock()
        request_tasks: set = set()
        try:
            while True:
                try:
                    payload = await protocol.read_frame(reader)
                except FramePayloadError as exc:
                    # framing survived: answer and keep reading
                    await self._send(writer, write_lock,
                                     protocol.encode_error(
                                         "-", "protocol", str(exc)))
                    continue
                except ProtocolError as exc:
                    # framing is gone: answer once, then hang up
                    await self._send(writer, write_lock,
                                     protocol.encode_error(
                                         "-", "protocol", str(exc)))
                    break
                if payload is None:       # clean EOF
                    break
                task = asyncio.ensure_future(
                    self._serve_frame(payload, writer, write_lock))
                request_tasks.add(task)
                task.add_done_callback(request_tasks.discard)
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Shutdown cancels idle handlers parked in read_frame;
            # exit quietly (cleanup below still runs) instead of
            # letting the cancellation surface as an 'Exception in
            # callback' traceback from the streams machinery.
            pass
        finally:
            if request_tasks:
                await asyncio.gather(*request_tasks,
                                     return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._conn_tasks.discard(asyncio.current_task())

    async def _send(self, writer: asyncio.StreamWriter,
                    lock: asyncio.Lock, payload: str) -> None:
        async with lock:
            try:
                protocol.write_frame(writer, payload)
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass   # client went away mid-reply; nothing to do

    async def _serve_frame(self, payload: str,
                           writer: asyncio.StreamWriter,
                           lock: asyncio.Lock) -> None:
        """Decode, serve through the broker, reply — all errors become
        typed ``ERR`` frames, never a dead connection or server."""
        self.frames_served += 1
        # Best-effort id recovery *before* full decoding, so a typed
        # decode error still lands on the caller's pending request
        # instead of an anonymous "-" frame nobody is waiting for.
        # Sanitized to the decoder's own id rules (<= 64 chars, no
        # newlines): the raw field comes from an arbitrary client and
        # is about to be reflected into a response frame.
        head = payload.split("\t", 2)
        request_id = "-"
        if len(head) >= 2 and head[1]:
            request_id = head[1].replace("\n", " ") \
                                .replace("\r", " ")[:64] or "-"
        # Head sampling happens here, at the trace entry point: one
        # decision per request, carried to the broker stages through the
        # span context (they key off "is a span live", never re-sample).
        tracer = get_tracer()
        if tracer is not None and tracer.sampled():
            span_cm = tracer.span("serve.request", root=True,
                                  attrs={"op": head[0] if head else "?"})
        else:
            span_cm = NOOP_SPAN
        try:
            with span_cm as sp:
                request = protocol.decode_request(payload,
                                                  self._max_pairs)
                request_id = request.request_id
                sp.set(id=request_id)
                reply = await self._answer(request)
        except ProtocolError as exc:
            reply = protocol.encode_error(request_id, "protocol",
                                          str(exc))
        except ParameterError as exc:
            reply = protocol.encode_error(request_id, "parameter",
                                          str(exc))
        except ServingError as exc:
            reply = protocol.encode_error(request_id, "serving",
                                          str(exc))
        except ReproError as exc:
            reply = protocol.encode_error(request_id, "internal",
                                          str(exc))
        except Exception as exc:  # pragma: no cover - true surprises
            reply = protocol.encode_error(request_id, "internal",
                                          f"{type(exc).__name__}: {exc}")
        await self._send(writer, lock, reply)

    async def _answer(self, request: Request) -> str:
        rid = request.request_id
        if self._shutting_down.is_set():
            raise ServingError("server is shutting down")
        if request.op == "PING":
            return protocol.encode_ok(rid, ["PONG"])
        if request.op == "INFO":
            return protocol.encode_ok(rid, self._info_fields())
        if request.op == "R":
            routes = await self.broker.route_batch(request.pairs)
            return protocol.encode_ok(
                rid, [protocol.encode_route_result(r) for r in routes])
        if request.op == "E":
            estimates = await self.broker.estimate_batch(request.pairs)
            return protocol.encode_ok(
                rid, [f"{e:.17g}" for e in estimates])
        if request.op == "STATS":
            return protocol.encode_ok(rid, self._stats_fields())
        if request.op == "TRACE":
            return protocol.encode_ok(rid,
                                      self._trace_fields(request.limit))
        raise ProtocolError(       # pragma: no cover - decoder gates ops
            f"unhandled op {request.op!r}")

    def _info_fields(self) -> list:
        """``key=value`` metadata fields: what the artifact serves and
        its vertex range — enough for a client/loadgen to generate
        valid pairs without out-of-band configuration."""
        fields = []
        for kind, backend in (("routing", self.broker.router),
                              ("estimation", self.broker.estimator)):
            if backend is None:
                continue
            n = getattr(backend, "num_vertices", None)
            if n is None:   # RouterPool: reach through to the artifact
                n = getattr(getattr(backend, "_artifact", None),
                            "num_vertices", "?")
            fields.append(f"{kind}.n={n}")
        fields.append(f"max_batch={self.broker.max_batch}")
        fields.append(f"max_pairs={self._max_pairs}")
        if self.broker.serves_routing:
            fields.append(
                f"generation={self.broker.router_generation}")
        return fields

    def _stats_fields(self) -> list:
        """The broker metrics snapshot flattened to dotted
        ``key=value`` fields (nested dicts become ``outer.inner``), so
        a client needs no JSON parser to read live stats."""
        fields = []

        def emit(prefix: str, value) -> None:
            if isinstance(value, dict):
                for key in sorted(value, key=str):
                    emit(f"{prefix}.{key}" if prefix else str(key),
                         value[key])
            else:
                fields.append(f"{prefix}={value}")

        emit("", self.broker.metrics.snapshot())
        return fields

    def _trace_fields(self, limit: Optional[int]) -> list:
        """The most recent finished spans, one compact-JSON object per
        field (compact separators: no tabs, so frames stay valid).
        Empty when tracing is disabled."""
        tracer = get_tracer()
        if tracer is None:
            return []
        return [json.dumps(record, separators=(",", ":"), default=str)
                for record in tracer.export(limit)]

    async def swap_routing(self, artifact) -> float:
        """Hot-swap the routing artifact the server's broker serves
        (see :meth:`RequestBroker.swap_router`): connected clients
        keep their connections, in-flight windows finish on the old
        generation, and ``INFO`` reports the new one."""
        return await self.broker.swap_router(artifact)


class TrafficClient:
    """Asyncio client for the TSV frame protocol.

    Multiplexes: requests may be issued concurrently from many tasks
    over one connection; a single reader task demultiplexes responses
    by request id.  Used by the load generator, the test suite, and as
    the reference implementation for clients in other languages.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._pending: Dict[str, asyncio.Future] = {}
        self._ids = 0
        self._closed = False
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(cls, host: str = "127.0.0.1",
                      port: int = 0,
                      unix_path: Optional[str] = None
                      ) -> "TrafficClient":
        if unix_path is not None:
            reader, writer = await asyncio.open_unix_connection(
                unix_path)
        else:
            reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        try:
            while True:
                payload = await protocol.read_frame(self._reader)
                if payload is None:
                    break
                response = protocol.decode_response(payload)
                fut = self._pending.pop(response.request_id, None)
                if fut is not None and not fut.done():
                    fut.set_result(response)
        except (ProtocolError, ConnectionResetError,
                asyncio.CancelledError):
            pass
        finally:
            self._fail_pending(ServingError(
                "connection closed with requests outstanding"))

    def _fail_pending(self, exc: Exception) -> None:
        pending, self._pending = self._pending, {}
        for fut in pending.values():
            if not fut.done():
                fut.set_exception(exc)

    async def _call(self, op: str, pairs=(),
                    extra=()) -> protocol.Response:
        if self._closed:
            raise ServingError("client is closed")
        if self._reader_task.done():
            raise ServingError(
                "connection is closed (server went away)")
        self._ids += 1
        rid = str(self._ids)
        fut = asyncio.get_running_loop().create_future()
        self._pending[rid] = fut
        self._writer.write(protocol.encode_frame(
            protocol.encode_request(op, rid, pairs, extra)))
        await self._writer.drain()
        if self._reader_task.done() and not fut.done():
            # The reader died between registration and now; its
            # _fail_pending may have swapped the dict before this
            # future entered it, so fail deterministically here.
            self._pending.pop(rid, None)
            raise ServingError(
                "connection closed with requests outstanding")
        response = await fut
        if not response.ok:
            exc_cls = {"protocol": ProtocolError,
                       "parameter": ParameterError,
                       "serving": ServingError}.get(response.code,
                                                    ServingError)
            raise exc_cls(f"server: {response.message}")
        return response

    # -- API -----------------------------------------------------------
    async def route(self, source: int, target: int):
        return (await self.route_batch([(source, target)]))[0]

    async def route_batch(self, pairs):
        pairs = list(pairs)
        if not pairs:
            return []
        response = await self._call("R", pairs)
        return [protocol.decode_route_result(field, u, v)
                for field, (u, v) in zip(response.fields, pairs)]

    async def estimate(self, u: int, v: int) -> float:
        return (await self.estimate_batch([(u, v)]))[0]

    async def estimate_batch(self, pairs):
        pairs = list(pairs)
        if not pairs:
            return []
        response = await self._call("E", pairs)
        return [float(field) for field in response.fields]

    async def ping(self) -> bool:
        response = await self._call("PING")
        return response.fields == ["PONG"]

    async def stats(self) -> Dict[str, float]:
        """Live broker metrics: the flattened dotted-key snapshot the
        ``STATS`` verb exposes, values parsed back to numbers."""
        response = await self._call("STATS")
        out: Dict[str, float] = {}
        for field in response.fields:
            key, _, value = field.partition("=")
            try:
                num = float(value)
            except ValueError:
                continue   # non-numeric diagnostic field
            out[key] = int(num) if num.is_integer() else num
        return out

    async def trace(self, limit: Optional[int] = None) -> list:
        """The server's most recent finished trace spans (newest
        last) as dicts; empty when server-side tracing is off."""
        extra = () if limit is None else (str(limit),)
        response = await self._call("TRACE", extra=extra)
        return [json.loads(field) for field in response.fields]

    async def info(self) -> Dict[str, str]:
        response = await self._call("INFO")
        out = {}
        for field in response.fields:
            key, _, value = field.partition("=")
            out[key] = value
        return out

    async def aclose(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "TrafficClient":
        return self

    async def __aexit__(self, *_exc) -> bool:
        await self.aclose()
        return False
