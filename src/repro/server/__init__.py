"""Async streaming traffic front-end: many small concurrent clients
sharing one warm serving backend.

``repro.serving`` (PR 4) scales one big batch across processes; this
package turns the repo into a *traffic-serving* system: a
:class:`RequestBroker` coalesces concurrent single-pair lookups into
fused micro-batches over a compiled artifact or warm ``RouterPool``,
:class:`TrafficServer` exposes it over TCP / unix sockets with a
length-prefixed TSV protocol, and ``loadgen`` drives it with seeded
open-loop (Poisson) and closed-loop traffic.  See ``README.md`` here
for the architecture and knobs.
"""

from .broker import RequestBroker, pooled_broker
from .metrics import BrokerMetrics, LatencyRecorder, percentile
from .tcp import TrafficClient, TrafficServer
from . import protocol

# NOTE: ``loadgen`` is deliberately not imported eagerly — it is
# runnable (``python -m repro.server.loadgen``), and importing it from
# the package first would shadow the ``runpy`` execution.

__all__ = [
    "RequestBroker",
    "pooled_broker",
    "BrokerMetrics",
    "LatencyRecorder",
    "percentile",
    "TrafficClient",
    "TrafficServer",
    "protocol",
]
