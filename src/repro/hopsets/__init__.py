"""Path-reporting (beta, eps)-hopsets ([EN16a]-style): data structures,
construction and per-instance verification."""

from .hopset import Hopset, HopsetEdge
from .construction import HopsetBuildReport, build_hopset, sample_hierarchy
from .verification import (
    measure_hopbound,
    verify_hopset_property,
    verify_path_reporting,
)

__all__ = [
    "Hopset",
    "HopsetEdge",
    "HopsetBuildReport",
    "build_hopset",
    "sample_hierarchy",
    "measure_hopbound",
    "verify_hopset_property",
    "verify_path_reporting",
]
