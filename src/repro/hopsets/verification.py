"""Hopset verification: Definition 1, Property 1, and β measurement.

The library never *assumes* an analytic hopbound: after building a hopset
we measure, per instance, the smallest ``β`` such that

    d^(β)_{G''}(u, v) <= (1 + eps) d_{G'}(u, v)   for all u, v,

and downstream phases iterate exactly that many times.  (Phase 1 of the
cluster construction is a ``β``-iteration Bellman–Ford over ``G''`` —
using a measured β keeps it both correct and tight.)
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..exceptions import HopsetError
from ..graphs.shortest_paths import INF
from ..graphs.virtual_graph import VirtualGraph
from .hopset import Hopset


def measure_hopbound(base: VirtualGraph, augmented: VirtualGraph,
                     eps: float, max_beta: Optional[int] = None) -> int:
    """Smallest β with ``d^(β)_augmented <= (1+eps) * d_base`` everywhere.

    Runs synchronized Bellman–Ford sweeps from every vertex of the
    augmented graph, stopping as soon as all pairs are within ``(1+eps)``
    of the base's exact distances.  Intended for virtual graphs (≈ sqrt n
    vertices), where all-pairs work is affordable.
    """
    vertices = base.vertices()
    if augmented.vertices() != vertices:
        raise HopsetError("augmented graph must share the base vertex set")
    if len(vertices) <= 1:
        return 1
    exact: Dict[int, Dict[int, float]] = {
        u: base.dijkstra(u) for u in vertices}
    targets: Dict[int, Dict[int, float]] = {
        u: {v: (1.0 + eps) * d for v, d in exact[u].items()
            if v != u and d < INF}
        for u in vertices}
    # current[u][v]: best known hop-bounded distance from u
    current: Dict[int, Dict[int, float]] = {
        u: {u: 0.0} for u in vertices}
    if max_beta is None:
        max_beta = len(vertices)
    for beta in range(1, max_beta + 1):
        for u in vertices:
            cur = current[u]
            updates: Dict[int, float] = {}
            for x, dx in list(cur.items()):
                for y, w in augmented.neighbor_weights(x):
                    nd = dx + w
                    if nd < cur.get(y, INF) and nd < updates.get(y, INF):
                        updates[y] = nd
            for y, nd in updates.items():
                if nd < cur.get(y, INF):
                    cur[y] = nd
        if all(current[u].get(v, INF) <= t + 1e-9
               for u in vertices for v, t in targets[u].items()):
            return beta
    raise HopsetError(
        f"hopbound not reached within {max_beta} iterations; "
        "the hopset likely violates Definition 1")


def verify_hopset_property(base: VirtualGraph, hopset: Hopset,
                           beta: int, eps: float) -> bool:
    """Check Definition 1 for the given ``(beta, eps)`` pair."""
    augmented = hopset.augment(base)
    vertices = base.vertices()
    for u in vertices:
        exact = base.dijkstra(u)
        bounded = augmented.hop_bounded_distances(u, beta)
        full = augmented.dijkstra(u)
        for v in vertices:
            if v == u or exact[v] == INF:
                continue
            # d_G <= d_H (hopset edges must dominate)
            if full[v] < exact[v] - 1e-9:
                return False
            # d^(beta)_H <= (1+eps) d_G
            if bounded.get(v, INF) > (1.0 + eps) * exact[v] + 1e-9:
                return False
    return True


def verify_path_reporting(base: VirtualGraph, hopset: Hopset) -> bool:
    """Check Property 1: every edge's path exists in ``base`` and its
    length equals the edge weight."""
    for edge in hopset:
        total = 0.0
        for a, b in zip(edge.path, edge.path[1:]):
            if not base.has_edge(a, b):
                return False
            total += base.weight(a, b)
        if abs(total - edge.weight) > 1e-9 * max(1.0, edge.weight):
            return False
    return True
