"""Hopset data structures (paper, Definition 1 and Property 1).

A ``(beta, eps)``-hopset for a graph ``G`` is an edge set ``F`` such that
in ``H = (V, E ∪ F)``:

    d_G(u,v) <= d_H(u,v) <= d^(beta)_H(u,v) <= (1+eps) d_G(u,v).     (4)

The paper additionally needs hopsets to be **path-reporting**
(Property 1): every hopset edge ``(u, v)`` of weight ``b`` is realized by
a path ``P`` in the underlying graph of length exactly ``b``, and every
vertex on ``P`` knows its distances to both endpoints and its neighbors
on ``P``.  Phase 1.5 of the cluster construction walks these paths to
assign real parents, so we store them explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..exceptions import HopsetError
from ..graphs.virtual_graph import VirtualGraph


@dataclass(frozen=True)
class HopsetEdge:
    """One hopset edge with its realizing path.

    ``path`` lists the underlying-graph vertices from ``u`` to ``v``
    inclusive; ``weight`` equals the path's length under the underlying
    graph's weights (Property 1 requires equality, which the verifier
    checks).
    """

    u: int
    v: int
    weight: float
    path: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.path) < 2:
            raise HopsetError(
                f"hopset edge ({self.u}, {self.v}) has a degenerate path")
        if self.path[0] != self.u or self.path[-1] != self.v:
            raise HopsetError(
                f"hopset edge ({self.u}, {self.v}) path endpoints "
                f"{self.path[0]}..{self.path[-1]} do not match")
        if self.weight <= 0:
            raise HopsetError(
                f"hopset edge ({self.u}, {self.v}) has non-positive weight")

    def other(self, x: int) -> int:
        """The endpoint that is not ``x``."""
        if x == self.u:
            return self.v
        if x == self.v:
            return self.u
        raise HopsetError(f"{x} is not an endpoint of ({self.u}, {self.v})")

    def prefix_distances(self, base: VirtualGraph) -> List[float]:
        """Distances from ``u`` to each path vertex under ``base`` weights.

        This is the Property-1 knowledge: vertex ``x`` on ``P`` knows
        ``d_P(x, u)`` (and by subtraction ``d_P(x, v)``).
        """
        out = [0.0]
        for a, b in zip(self.path, self.path[1:]):
            out.append(out[-1] + base.weight(a, b))
        return out


class Hopset:
    """A collection of path-reporting hopset edges over a base graph.

    The *base* is whatever graph the realizing paths live in — for the
    paper's ``G''`` construction that is the virtual graph ``G'``.
    """

    def __init__(self, beta_target: int = 0) -> None:
        self._edges: List[HopsetEdge] = []
        self._by_endpoint: Dict[Tuple[int, int], HopsetEdge] = {}
        self.beta_target = beta_target
        #: measured hopbound, set by the verifier / builder
        self.beta_measured: Optional[int] = None

    def add(self, edge: HopsetEdge) -> None:
        """Insert an edge; keeps only the lighter of duplicate endpoints."""
        key = (min(edge.u, edge.v), max(edge.u, edge.v))
        existing = self._by_endpoint.get(key)
        if existing is not None:
            if existing.weight <= edge.weight:
                return
            self._edges.remove(existing)
        self._by_endpoint[key] = edge
        self._edges.append(edge)

    def edges(self) -> List[HopsetEdge]:
        return list(self._edges)

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[HopsetEdge]:
        return iter(self._edges)

    def lookup(self, u: int, v: int) -> Optional[HopsetEdge]:
        """The stored edge between ``u`` and ``v`` (either order)."""
        return self._by_endpoint.get((min(u, v), max(u, v)))

    def total_weight(self) -> float:
        return sum(e.weight for e in self._edges)

    def augment(self, base: VirtualGraph) -> VirtualGraph:
        """The paper's ``G''``: base plus hopset edges.

        On weight conflicts the hopset's weight wins, per Section 3.3.1
        ("In the case of conflict, the weights w'' agree with the weights
        of the hopset F").
        """
        augmented = base.copy()
        for edge in self._edges:
            # hopset weight wins even when heavier than an existing edge
            augmented.add_edge(edge.u, edge.v, edge.weight)
        return augmented

    def __repr__(self) -> str:
        return (f"Hopset(edges={len(self._edges)}, "
                f"beta_measured={self.beta_measured})")
