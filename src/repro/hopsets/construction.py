"""Path-reporting hopset construction ([EN16a]-style, Theorem 2).

We build the Thorup–Zwick-emulator hopset, the construction [EN16a]'s
superclustering-and-interconnection refines:

1. Sample a level hierarchy ``A_0 = V' ⊇ A_1 ⊇ ... ⊇ A_κ = ∅`` on the
   virtual graph's vertices, each level keeping vertices with probability
   ``m^{-1/κ}`` where ``κ = ceil(1/ρ)``.
2. For every ``u ∈ A_i \\ A_{i+1}`` add hopset edges
   * to its ``(i+1)``-pivot (nearest ``A_{i+1}`` vertex), and
   * to every ``v ∈ A_i`` with ``d(u, v) < d(u, A_{i+1})`` (its *bunch*),
   each weighted by the exact virtual-graph distance and carrying the
   Dijkstra path realizing it (Property 1).

The expected number of edges is ``O(κ · m^{1+1/κ})`` and the classic
analysis gives hopbound ``β = O(κ/ε)^{κ}``-ish; rather than trusting the
constant we *measure* β on the instance (see
:func:`repro.hopsets.verification.measure_hopbound`) and let downstream
phases iterate exactly ``β_measured`` times.  Tests assert the measured
bound stays far below the unaided hop radius.

Round accounting follows Theorem 2's schedule with measured quantities:
every bunch exploration is a bounded Dijkstra whose frontier words are
counted, and virtual-edge traffic is charged via Lemma 1 broadcast.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..congest.bfs import BFSTree
from ..congest.metrics import pipelined_rounds
from ..exceptions import HopsetError, ParameterError
from ..graphs.shortest_paths import INF
from ..graphs.virtual_graph import VirtualGraph
from .hopset import Hopset, HopsetEdge
from .verification import measure_hopbound


@dataclass
class HopsetBuildReport:
    """What the hopset build produced and what it cost."""

    hopset: Hopset
    levels: int
    hierarchy_sizes: List[int]
    rounds: int
    eps: float

    @property
    def num_edges(self) -> int:
        return len(self.hopset)


def _virtual_dijkstra_with_paths(virtual: VirtualGraph, source: int
                                 ) -> Tuple[Dict[int, float],
                                            Dict[int, Optional[int]]]:
    """Dijkstra over the virtual graph, returning distances and parents."""
    dist: Dict[int, float] = {v: INF for v in virtual.vertices()}
    parent: Dict[int, Optional[int]] = {v: None for v in virtual.vertices()}
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    done = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u in done:
            continue
        done.add(u)
        for v, w in virtual.neighbor_weights(u):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    return dist, parent


def _extract_path(parent: Dict[int, Optional[int]], source: int,
                  target: int) -> Tuple[int, ...]:
    path = [target]
    while path[-1] != source:
        prev = parent[path[-1]]
        if prev is None:
            raise HopsetError(
                f"no path from {source} to {target} in virtual graph")
        path.append(prev)
    path.reverse()
    return tuple(path)


def sample_hierarchy(vertices: Sequence[int], levels: int,
                     rng: random.Random) -> List[List[int]]:
    """Sample ``A_0 ⊇ A_1 ⊇ ... ⊇ A_{levels-1}`` (``A_levels = ∅``).

    Each vertex of ``A_{i-1}`` survives into ``A_i`` independently with
    probability ``m^{-1/levels}``.
    """
    m = max(len(vertices), 2)
    keep_probability = m ** (-1.0 / levels)
    hierarchy: List[List[int]] = [sorted(vertices)]
    for _ in range(1, levels):
        previous = hierarchy[-1]
        nxt = [v for v in previous if rng.random() < keep_probability]
        hierarchy.append(nxt)
    return hierarchy


def build_hopset(virtual: VirtualGraph, eps: float,
                 rho: float = 0.5,
                 rng: Optional[random.Random] = None,
                 bfs_tree: Optional[BFSTree] = None,
                 capacity_words: int = 2,
                 measure_beta: bool = True) -> HopsetBuildReport:
    """Build a path-reporting hopset for ``virtual`` (paper Theorem 2).

    Parameters
    ----------
    virtual:
        The virtual graph ``G'`` (e.g. from source detection).
    eps:
        Target stretch slack; used only for β measurement — the TZ
        emulator's edges are exact distances, so smaller ``eps`` simply
        yields a larger measured β.
    rho:
        Controls the number of levels ``κ = max(2, ceil(1/ρ))``; the
        paper picks ``ρ = max(1/k, log log n / sqrt(log n))``.
    rng:
        Source of randomness for the hierarchy (defaults to seeded 0).
    bfs_tree:
        Underlying BFS tree, for the broadcast round charge.
    measure_beta:
        When True (default), measure the instance's actual hopbound and
        store it on the hopset.
    """
    if not 0 < eps < 1:
        raise ParameterError(f"eps must be in (0, 1), got {eps}")
    if not 0 < rho <= 1:
        raise ParameterError(f"rho must be in (0, 1], got {rho}")
    if rng is None:
        rng = random.Random(0)

    vertices = virtual.vertices()
    m = len(vertices)
    hopset = Hopset()
    if m <= 1:
        report = HopsetBuildReport(hopset=hopset, levels=0,
                                   hierarchy_sizes=[m], rounds=0, eps=eps)
        hopset.beta_measured = 1
        return report

    levels = max(2, math.ceil(1.0 / rho))
    hierarchy = sample_hierarchy(vertices, levels, rng)
    level_of: Dict[int, int] = {}
    for i, level_set in enumerate(hierarchy):
        for v in level_set:
            level_of[v] = i  # highest level containing v

    exploration_words = 0
    for u in vertices:
        i = level_of[u]
        dist, parent = _virtual_dijkstra_with_paths(virtual, u)
        next_level = hierarchy[i + 1] if i + 1 < levels else []
        if next_level:
            pivot = min(next_level, key=lambda x: (dist[x], x))
            pivot_dist = dist[pivot]
        else:
            pivot = None
            pivot_dist = INF
        # bunch: same-or-higher level vertices strictly closer than the
        # next-level pivot
        for v in vertices:
            if v == u or level_of[v] < i:
                continue
            if dist[v] < pivot_dist and dist[v] < INF:
                path = _extract_path(parent, u, v)
                hopset.add(HopsetEdge(u, v, dist[v], path))
                exploration_words += len(path)
        if pivot is not None and pivot_dist < INF:
            path = _extract_path(parent, u, pivot)
            hopset.add(HopsetEdge(u, pivot, pivot_dist, path))
            exploration_words += len(path)

    # Round charge (Theorem 2 schedule with measured quantities):
    #   exploration traffic over virtual edges is realized by Lemma-1
    #   broadcasts; κ sampling levels each ship their bunch explorations.
    height = bfs_tree.height if bfs_tree is not None else 0
    rounds = levels * pipelined_rounds(
        2 * exploration_words, capacity_words, height)

    if measure_beta:
        augmented = hopset.augment(virtual)
        hopset.beta_measured = measure_hopbound(virtual, augmented, eps)
    report = HopsetBuildReport(hopset=hopset, levels=levels,
                               hierarchy_sizes=[len(s) for s in hierarchy],
                               rounds=rounds, eps=eps)
    return report
