"""RAM-word size accounting.

Throughout the paper, table / label / sketch sizes are measured in RAM
words of ``O(log n)`` bits each: a vertex name, a port number, a distance
value (weights are polynomial in ``n``), or a DFS timestamp each occupy
one word.  This module centralizes that accounting so every scheme in the
library reports sizes in the same currency.
"""

from __future__ import annotations

from typing import Iterable


#: Number of words occupied by one vertex identifier.
VERTEX_WORDS = 1

#: Number of words occupied by one port number.
PORT_WORDS = 1

#: Number of words occupied by one distance value (weights are poly(n)).
DISTANCE_WORDS = 1

#: Number of words occupied by one DFS timestamp.
TIMESTAMP_WORDS = 1


def words_for_vertex() -> int:
    """Return the word cost of storing a single vertex name."""
    return VERTEX_WORDS


def words_for_entry(*, vertices: int = 0, ports: int = 0, distances: int = 0,
                    timestamps: int = 0, flags: int = 0) -> int:
    """Return the word cost of a composite table entry.

    ``flags`` counts boolean/constant-size fields; any positive number of
    them is charged a single word (they pack into one machine word).
    """
    total = (vertices * VERTEX_WORDS + ports * PORT_WORDS
             + distances * DISTANCE_WORDS + timestamps * TIMESTAMP_WORDS)
    if flags > 0:
        total += 1
    return total


def total_words(sizes: Iterable[int]) -> int:
    """Sum an iterable of word counts."""
    return sum(sizes)


def max_words(sizes: Iterable[int]) -> int:
    """Maximum of an iterable of word counts (0 when empty)."""
    sizes = list(sizes)
    if not sizes:
        return 0
    return max(sizes)


def average_words(sizes: Iterable[int]) -> float:
    """Average of an iterable of word counts (0.0 when empty)."""
    sizes = list(sizes)
    if not sizes:
        return 0.0
    return sum(sizes) / len(sizes)
