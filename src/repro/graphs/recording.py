"""Optional support-edge recording for incremental rebuilds.

The incremental builder (:mod:`repro.dynamic`) needs to know which
edges a finished construction actually *leaned on*: the edges whose
weight, if increased, could change a decision the build made.  Every
weight-consuming step of the construction is a strict-``<`` relaxation,
so the sound characterization is the set of **committed winners** —
edges that at some point produced a strictly improving update.  An edge
that never won anywhere only ever produced candidates that lost a
strict comparison; making it heavier keeps every one of those
comparisons losing, so the entire build transcript — values, parents,
tie-breaks, frontiers, round charges — is unchanged.

Winners are recorded together with the **rounding unit** the relaxation
consumed the weight under.  The rounded source detection explores each
distance scale on weights ``ceil(w / unit) * unit``; a weight change
that leaves the rounded value at that unit unchanged is invisible to
the whole scale, committed winner or not.  The fast-path certificate is
therefore per ``(edge, unit)``: a weight increase ``w -> w'`` on edge
``e`` is *certified invisible* iff for every recorded unit ``u`` of
``e``, ``ceil(w/u) == ceil(w'/u)`` — where the raw (un-rounded)
explorations record the sentinel unit ``None``, which no change ever
satisfies.  (Decreases are never certified: a shrinking edge can mint
new winners anywhere.)

Beyond the per-(edge, unit) certificate, a recorder can capture two
finer-grained kinds of evidence for the ``clusters`` rebuild strategy:

* **Exploration traces** (:class:`ExplorationTrace`): per labelled
  ``multi_source_exploration`` call, the full per-source applied-update
  event stream ``(iteration, vertex, via, distance)``.  Each source's
  exploration is independent of every other source's (candidates for
  ``s`` come only from ``s``'s own frontier; join rules are pure
  per-``(vertex, source, distance)`` predicates; tie-breaks are within
  a single source row), so the events double as per-cluster *reach
  sets*: the edges/vertices a source's frontier ever crossed.  A weight
  change outside a source's reach set provably leaves that source's
  whole transcript unchanged, which is what lets the incremental
  builder re-run only the dirty sources and splice the clean ones back
  in bit-identically (:mod:`repro.dynamic.splice`).
* **Scale-grid notes**: each :func:`detect_sources` call records its
  ``(hop_bound -> num_scales)`` pair.  ``num_scales`` is the *only*
  consumer of ``graph.max_weight()`` in the whole build, so a weight
  increase that keeps every recorded grid's scale count unchanged is
  invisible to the rounding-unit grids — a much sharper compile-only
  guard than requiring the raw max weight to be unchanged.

This module is the recording side: a process-global (single-threaded by
design — builds are single-threaded) :class:`SupportRecorder` that the
relaxation kernels feed when one is active, and a :func:`recording`
context manager the incremental builder wraps around an instrumented
build.  When no recorder is active the kernels pay one ``is None``
check, nothing else.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Set, Tuple

_ACTIVE: Optional["SupportRecorder"] = None

#: Sentinel for "the relaxation consumed the raw weight" (no rounding
#: unit can absorb a change there).
RAW = None


class ExplorationTrace:
    """The replayable transcript of one labelled multi-source call.

    ``events[s]`` is the chronological list of applied updates of
    source ``s``'s exploration: ``(iteration, vertex, via, distance)``
    tuples, where ``iteration`` is 1-based and ``via`` is the neighbor
    the winning estimate arrived through.  The initial unconditional
    self-application ``dist[s][s] = 0`` is *not* an event (it happens
    before iteration 1 and is never join-checked); reconstruction adds
    it back explicitly.  The call-shape fields (``sources``, ``budget``,
    ``capacity_words``, threshold/strict/exempt of the
    :class:`~repro.congest.bellman_ford.JoinRule`) let a later build
    check that a recorded trace still describes the call it is about to
    splice.
    """

    __slots__ = ("label", "sources", "budget", "capacity_words",
                 "threshold", "strict", "exempt_sources", "events",
                 "index")

    def __init__(self, label: str, sources: Tuple[int, ...], budget: int,
                 capacity_words: int, threshold: Tuple[float, ...],
                 strict: bool, exempt_sources: Optional[frozenset],
                 events: Dict[int, List[Tuple[int, int, int, float]]],
                 index=None) -> None:
        self.label = label
        self.sources = sources
        self.budget = budget
        self.capacity_words = capacity_words
        self.threshold = threshold
        self.strict = strict
        self.exempt_sources = exempt_sources
        self.events = events
        #: lazily built inverted reach index (see
        #: ``repro.dynamic.splice``): ``(applied, won_edge)`` maps a
        #: vertex / undirected edge to the sources whose exploration
        #: applied an estimate there / committed it as a winner.  The
        #: splice builds it on first use and carries it forward across
        #: rebuilds, patching only the dirty sources' contributions.
        self.index = index


class DetectionTrace:
    """The replayable transcript of one labelled source-detection call.

    Detection (:func:`repro.sketches.source_detection.detect_sources`)
    is also per-source independent — the batched union-frontier advance
    is bit-identical to per-source runs — so its transcript splits
    cleanly per source too:

    * ``cells[s]`` is the ascending-by-vertex tuple of *unfiltered*
      finite cells ``(u, value, parent)`` of source ``s``'s merged
      best row (the join rule is applied only when materializing the
      estimate dictionaries, never during propagation, so a changed
      rule re-filters these cells without re-running anything);
    * ``commits[s]`` maps each undirected edge ``s`` ever committed as
      a winner to the set of rounding units it won under — the
      per-source refinement of :attr:`SupportRecorder.units`.

    ``units`` lists the rounding unit of every scale the call swept
    (``None`` for the exact mode's raw pseudo-scale): a weight change
    whose rounded value is unchanged at a unit is invisible to that
    entire scale, which is what makes the per-source dirty tests sharp.
    """

    __slots__ = ("label", "sources", "hop_bound", "eps", "mode",
                 "num_scales", "units", "cells", "commits")

    def __init__(self, label: str, sources: Tuple[int, ...],
                 hop_bound: int, eps: float, mode: str, num_scales: int,
                 units: Tuple[Optional[float], ...],
                 cells: Dict[int, Tuple],
                 commits: Dict[int, Dict[Tuple[int, int],
                                         Set[Optional[float]]]]) -> None:
        self.label = label
        self.sources = sources
        self.hop_bound = hop_bound
        self.eps = eps
        self.mode = mode
        self.num_scales = num_scales
        self.units = units
        self.cells = cells
        self.commits = commits


class SupportRecorder:
    """Accumulates the per-unit support-edge evidence of one build."""

    __slots__ = ("units", "capture_explorations", "traces", "scale_grids")

    def __init__(self, capture_explorations: bool = False) -> None:
        #: undirected edge -> set of rounding units it won under
        #: (``None`` = raw weight).
        self.units: Dict[Tuple[int, int], Set[Optional[float]]] = {}
        #: when set, labelled multi-source explorations and source
        #: detections store their per-source transcripts here
        #: (label -> ExplorationTrace | DetectionTrace)
        self.capture_explorations = capture_explorations
        self.traces: Dict[str, object] = {}
        #: detection hop bound -> number of distance scales its
        #: rounding-unit grid used (the build's only max-weight input)
        self.scale_grids: Dict[int, int] = {}

    def add_trace(self, trace) -> None:
        """Store (or replace) the exploration/detection trace for
        ``trace.label``."""
        self.traces[trace.label] = trace

    def pop_trace(self, label: str):
        """Remove and return the trace for ``label`` if present."""
        return self.traces.pop(label, None)

    def merge_edge_units(self, items) -> None:
        """Bulk-merge ``(edge, units)`` pairs into the support set.

        The splice replay path: a clean source's committed winners are
        already deduplicated per ``(edge, unit)`` in its trace, so
        replaying them is a set union per edge instead of re-walking
        the raw commit stream."""
        units = self.units
        for key, bucket in items:
            mine = units.get(key)
            if mine is None:
                units[key] = set(bucket)
            else:
                mine |= bucket

    def note_scale_grid(self, hop_bound: int, num_scales: int) -> None:
        """Record one detection call's ``hop_bound -> num_scales``."""
        self.scale_grids[hop_bound] = num_scales

    def commit(self, u: int, v: int, unit: Optional[float] = RAW) -> None:
        """Record one committed winner edge ``{u, v}`` at ``unit``."""
        key = (u, v) if u < v else (v, u)
        bucket = self.units.get(key)
        if bucket is None:
            bucket = self.units[key] = set()
        bucket.add(unit)

    def commit_pairs(self, pairs: Iterable[Tuple[int, int]],
                     unit: Optional[float] = RAW) -> None:
        """Record many committed winner edges at one ``unit``."""
        units = self.units
        for u, v in pairs:
            key = (u, v) if u < v else (v, u)
            bucket = units.get(key)
            if bucket is None:
                bucket = units[key] = set()
            bucket.add(unit)

    def certifies_increase(self, u: int, v: int, old_w: int,
                           new_w: int) -> bool:
        """Whether ``{u, v}: old_w -> new_w`` is provably invisible.

        Requires ``new_w >= old_w`` (callers gate on increase-only
        batches) and checks every recorded unit: a raw commit is never
        absorbed; a rounded commit is absorbed iff the rounded weight at
        that unit is unchanged.
        """
        if new_w < old_w:
            return False
        bucket = self.units.get((u, v) if u < v else (v, u))
        if bucket is None:
            return True
        for unit in bucket:
            if unit is RAW:
                return False
            if math.ceil(old_w / unit) != math.ceil(new_w / unit):
                return False
        return True

    def snapshot(self) -> Dict[Tuple[int, int], frozenset]:
        """A frozen copy of the transcript: edge -> frozenset of units.

        The comparison form of the support evidence — two builds lean
        on the same edges iff their snapshots are equal.  The
        differential harness uses it to pin the vectorized join paths
        to the callback oracle's transcript.
        """
        return {edge: frozenset(bucket)
                for edge, bucket in self.units.items()}

    def __len__(self) -> int:
        return len(self.units)


def active() -> Optional[SupportRecorder]:
    """The currently installed recorder, or ``None``."""
    return _ACTIVE


class recording:
    """Context manager installing ``rec`` as the active recorder.

    Not reentrant: nesting raises, because a nested build recording
    into a different set would silently split the support evidence.
    """

    def __init__(self, rec: SupportRecorder) -> None:
        self._rec = rec

    def __enter__(self) -> SupportRecorder:
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("support recording is already active")
        _ACTIVE = self._rec
        return self._rec

    def __exit__(self, *exc) -> None:
        global _ACTIVE
        _ACTIVE = None
