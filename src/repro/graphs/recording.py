"""Optional support-edge recording for incremental rebuilds.

The incremental builder (:mod:`repro.dynamic`) needs to know which
edges a finished construction actually *leaned on*: the edges whose
weight, if increased, could change a decision the build made.  Every
weight-consuming step of the construction is a strict-``<`` relaxation,
so the sound characterization is the set of **committed winners** —
edges that at some point produced a strictly improving update.  An edge
that never won anywhere only ever produced candidates that lost a
strict comparison; making it heavier keeps every one of those
comparisons losing, so the entire build transcript — values, parents,
tie-breaks, frontiers, round charges — is unchanged.

Winners are recorded together with the **rounding unit** the relaxation
consumed the weight under.  The rounded source detection explores each
distance scale on weights ``ceil(w / unit) * unit``; a weight change
that leaves the rounded value at that unit unchanged is invisible to
the whole scale, committed winner or not.  The fast-path certificate is
therefore per ``(edge, unit)``: a weight increase ``w -> w'`` on edge
``e`` is *certified invisible* iff for every recorded unit ``u`` of
``e``, ``ceil(w/u) == ceil(w'/u)`` — where the raw (un-rounded)
explorations record the sentinel unit ``None``, which no change ever
satisfies.  (Decreases are never certified: a shrinking edge can mint
new winners anywhere.)

This module is the recording side: a process-global (single-threaded by
design — builds are single-threaded) :class:`SupportRecorder` that the
relaxation kernels feed when one is active, and a :func:`recording`
context manager the incremental builder wraps around an instrumented
build.  When no recorder is active the kernels pay one ``is None``
check, nothing else.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Set, Tuple

_ACTIVE: Optional["SupportRecorder"] = None

#: Sentinel for "the relaxation consumed the raw weight" (no rounding
#: unit can absorb a change there).
RAW = None


class SupportRecorder:
    """Accumulates the per-unit support-edge evidence of one build."""

    __slots__ = ("units",)

    def __init__(self) -> None:
        #: undirected edge -> set of rounding units it won under
        #: (``None`` = raw weight).
        self.units: Dict[Tuple[int, int], Set[Optional[float]]] = {}

    def commit(self, u: int, v: int, unit: Optional[float] = RAW) -> None:
        """Record one committed winner edge ``{u, v}`` at ``unit``."""
        key = (u, v) if u < v else (v, u)
        bucket = self.units.get(key)
        if bucket is None:
            bucket = self.units[key] = set()
        bucket.add(unit)

    def commit_pairs(self, pairs: Iterable[Tuple[int, int]],
                     unit: Optional[float] = RAW) -> None:
        """Record many committed winner edges at one ``unit``."""
        units = self.units
        for u, v in pairs:
            key = (u, v) if u < v else (v, u)
            bucket = units.get(key)
            if bucket is None:
                bucket = units[key] = set()
            bucket.add(unit)

    def certifies_increase(self, u: int, v: int, old_w: int,
                           new_w: int) -> bool:
        """Whether ``{u, v}: old_w -> new_w`` is provably invisible.

        Requires ``new_w >= old_w`` (callers gate on increase-only
        batches) and checks every recorded unit: a raw commit is never
        absorbed; a rounded commit is absorbed iff the rounded weight at
        that unit is unchanged.
        """
        if new_w < old_w:
            return False
        bucket = self.units.get((u, v) if u < v else (v, u))
        if bucket is None:
            return True
        for unit in bucket:
            if unit is RAW:
                return False
            if math.ceil(old_w / unit) != math.ceil(new_w / unit):
                return False
        return True

    def snapshot(self) -> Dict[Tuple[int, int], frozenset]:
        """A frozen copy of the transcript: edge -> frozenset of units.

        The comparison form of the support evidence — two builds lean
        on the same edges iff their snapshots are equal.  The
        differential harness uses it to pin the vectorized join paths
        to the callback oracle's transcript.
        """
        return {edge: frozenset(bucket)
                for edge, bucket in self.units.items()}

    def __len__(self) -> int:
        return len(self.units)


def active() -> Optional[SupportRecorder]:
    """The currently installed recorder, or ``None``."""
    return _ACTIVE


class recording:
    """Context manager installing ``rec`` as the active recorder.

    Not reentrant: nesting raises, because a nested build recording
    into a different set would silently split the support evidence.
    """

    def __init__(self, rec: SupportRecorder) -> None:
        self._rec = rec

    def __enter__(self) -> SupportRecorder:
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("support recording is already active")
        _ACTIVE = self._rec
        return self._rec

    def __exit__(self, *exc) -> None:
        global _ACTIVE
        _ACTIVE = None
