"""Weighted undirected graph substrate.

The paper's network is a weighted undirected graph ``G = (V, E, w)`` with
integer weights in ``{1, ..., poly(n)}`` (Section 2).  This module provides
the concrete graph type every other subsystem builds on.  Vertices are the
integers ``0 .. n-1``; the adjacency structure is a list of per-vertex
dictionaries mapping neighbor to weight.

The class is deliberately minimal and explicit because the CONGEST
simulator and the routing algorithms mutate per-node *state*, never the
graph itself.  The one derived structure — the CSR adjacency view the
vectorized construction kernels run on (:mod:`repro.graphs.csr`) — is
cached against an explicit mutation ``version`` so it can never go
stale: every ``add_edge``/``remove_edge`` bumps the version and thereby
invalidates any outstanding view.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..exceptions import GraphError, InvalidWeightError


class WeightedGraph:
    """An undirected graph with positive integer edge weights.

    Parameters
    ----------
    num_vertices:
        Number of vertices; vertex names are ``0 .. num_vertices - 1``.

    Notes
    -----
    * Self-loops are rejected (they are useless for routing).
    * Parallel edges are collapsed: re-adding an edge overwrites its weight.
    * Weights must be positive integers, per the paper's model assumption
      that a weight fits in one message word.
    """

    __slots__ = ("_n", "_adj", "_num_edges", "_version", "_csr_cache",
                 "_flat_cache")

    def __init__(self, num_vertices: int) -> None:
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be >= 0, got {num_vertices}")
        self._n = num_vertices
        self._adj: List[Dict[int, int]] = [dict() for _ in range(num_vertices)]
        self._num_edges = 0
        self._version = 0
        self._csr_cache = None  # managed by repro.graphs.csr.csr_view
        self._flat_cache = None  # managed by congest.bellman_ford._flat_adjacency

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, weight: int = 1) -> None:
        """Insert (or overwrite) the undirected edge ``{u, v}``."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise GraphError(f"self-loop on vertex {u} is not allowed")
        if not isinstance(weight, int) or isinstance(weight, bool):
            raise InvalidWeightError(
                f"edge weight must be an int, got {weight!r}")
        if weight <= 0:
            raise InvalidWeightError(
                f"edge weight must be positive, got {weight}")
        if v not in self._adj[u]:
            self._num_edges += 1
        self._adj[u][v] = weight
        self._adj[v][u] = weight
        self._version += 1

    def update_edge_weight(self, u: int, v: int, weight: int) -> None:
        """Change the weight of the *existing* edge ``{u, v}``.

        The first-class mutation for dynamic-topology workloads: unlike
        ``add_edge`` (which silently creates missing edges) this raises
        :class:`GraphError` when the edge is absent, so a weight-update
        feed can never invent topology.  Adjacency insertion order — and
        therefore the CSR neighbor order and every derived port number —
        is preserved.  A no-op update (same weight) still bumps
        ``version``: derived views re-validate rather than guess.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if v not in self._adj[u]:
            raise GraphError(f"edge ({u}, {v}) does not exist")
        if not isinstance(weight, int) or isinstance(weight, bool):
            raise InvalidWeightError(
                f"edge weight must be an int, got {weight!r}")
        if weight <= 0:
            raise InvalidWeightError(
                f"edge weight must be positive, got {weight}")
        self._adj[u][v] = weight
        self._adj[v][u] = weight
        self._version += 1

    def remove_edge(self, u: int, v: int) -> None:
        """Delete the undirected edge ``{u, v}``; raise if absent."""
        self._check_vertex(u)
        self._check_vertex(v)
        if v not in self._adj[u]:
            raise GraphError(f"edge ({u}, {v}) does not exist")
        del self._adj[u][v]
        del self._adj[v][u]
        self._num_edges -= 1
        self._version += 1

    @classmethod
    def from_edges(cls, num_vertices: int,
                   edges: Iterator[Tuple[int, int, int]]) -> "WeightedGraph":
        """Build a graph from an iterable of ``(u, v, weight)`` triples."""
        graph = cls(num_vertices)
        for u, v, weight in edges:
            graph.add_edge(u, v, weight)
        return graph

    def copy(self) -> "WeightedGraph":
        """Return a deep copy of this graph."""
        other = WeightedGraph(self._n)
        for u in range(self._n):
            for v, weight in self._adj[u].items():
                if u < v:
                    other.add_edge(u, v, weight)
        return other

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return self._num_edges

    @property
    def version(self) -> int:
        """Mutation counter; bumped by every edge insert/delete.

        Derived views (the CSR adjacency of :mod:`repro.graphs.csr`)
        stamp themselves with this value and rebuild when it moves.
        """
        return self._version

    def vertices(self) -> range:
        """Iterate over all vertex names."""
        return range(self._n)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._adj[u]

    def weight(self, u: int, v: int) -> int:
        """Weight of the edge ``{u, v}``; raise if absent."""
        self._check_vertex(u)
        self._check_vertex(v)
        try:
            return self._adj[u][v]
        except KeyError:
            raise GraphError(f"edge ({u}, {v}) does not exist") from None

    def neighbors(self, u: int) -> Iterator[int]:
        """Iterate over the neighbors of ``u``."""
        self._check_vertex(u)
        return iter(self._adj[u])

    def neighbor_weights(self, u: int) -> Iterator[Tuple[int, int]]:
        """Iterate over ``(neighbor, weight)`` pairs of ``u``."""
        self._check_vertex(u)
        return iter(self._adj[u].items())

    def degree(self, u: int) -> int:
        """Number of neighbors of ``u``."""
        self._check_vertex(u)
        return len(self._adj[u])

    def edges(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate over undirected edges as ``(u, v, weight)`` with u < v."""
        for u in range(self._n):
            for v, weight in self._adj[u].items():
                if u < v:
                    yield (u, v, weight)

    def max_weight(self) -> int:
        """Largest edge weight (0 for an edgeless graph)."""
        best = 0
        for _, _, weight in self.edges():
            if weight > best:
                best = weight
        return best

    def total_weight(self) -> int:
        """Sum of all edge weights."""
        return sum(weight for _, _, weight in self.edges())

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    def connected_component(self, source: int) -> List[int]:
        """Vertices reachable from ``source`` (including it), BFS order."""
        self._check_vertex(source)
        seen = [False] * self._n
        seen[source] = True
        order = [source]
        frontier = [source]
        while frontier:
            next_frontier = []
            for u in frontier:
                for v in self._adj[u]:
                    if not seen[v]:
                        seen[v] = True
                        order.append(v)
                        next_frontier.append(v)
            frontier = next_frontier
        return order

    def is_connected(self) -> bool:
        """Whether the graph is connected (empty graph counts as connected)."""
        if self._n == 0:
            return True
        return len(self.connected_component(0)) == self._n

    def require_connected(self) -> None:
        """Raise :class:`DisconnectedGraphError` unless connected."""
        from ..exceptions import DisconnectedGraphError
        if not self.is_connected():
            raise DisconnectedGraphError(
                f"graph on {self._n} vertices is not connected")

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Convert to a ``networkx.Graph`` (for tests / visualisation)."""
        import networkx as nx
        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(range(self._n))
        for u, v, weight in self.edges():
            nx_graph.add_edge(u, v, weight=weight)
        return nx_graph

    @classmethod
    def from_networkx(cls, nx_graph, weight_attr: str = "weight",
                      default_weight: int = 1) -> "WeightedGraph":
        """Build from a ``networkx.Graph``; nodes are relabelled 0..n-1."""
        nodes = sorted(nx_graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        graph = cls(len(nodes))
        for u, v, data in nx_graph.edges(data=True):
            weight = int(data.get(weight_attr, default_weight))
            graph.add_edge(index[u], index[v], weight)
        return graph

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (f"WeightedGraph(n={self._n}, m={self._num_edges}, "
                f"max_w={self.max_weight()})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WeightedGraph):
            return NotImplemented
        return self._n == other._n and self._adj == other._adj

    def __hash__(self) -> int:  # graphs are mutable; identity hash
        return id(self)

    def _check_vertex(self, u: int) -> None:
        if not isinstance(u, int) or isinstance(u, bool):
            raise GraphError(f"vertex must be an int, got {u!r}")
        if not 0 <= u < self._n:
            raise GraphError(
                f"vertex {u} out of range for graph on {self._n} vertices")


def validate_polynomial_weights(graph: WeightedGraph,
                                exponent: int = 4) -> None:
    """Check the paper's weight assumption ``w(e) <= n^exponent``.

    Raises :class:`InvalidWeightError` when violated.  ``n < 2`` graphs are
    exempt (any positive weight is fine there).
    """
    n = graph.num_vertices
    if n < 2:
        return
    bound = n ** exponent
    for u, v, weight in graph.edges():
        if weight > bound:
            raise InvalidWeightError(
                f"edge ({u}, {v}) weight {weight} exceeds n^{exponent}"
                f" = {bound}")
