"""Graph transforms for workload preparation.

Utilities the benchmarks and examples use to derive controlled variants
of a workload: unit weights (makes ``S = D``), weight scaling (stresses
the polynomial-weight assumption), perturbation (breaks shortest-path
ties), and subgraph extraction (connected induced subgraphs for
scale-down sweeps).  All transforms return new graphs; inputs are never
mutated.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Sequence, Union

from ..exceptions import GraphError, ParameterError
from .generators import RandomLike, _rng
from .weighted_graph import WeightedGraph


def with_unit_weights(graph: WeightedGraph) -> WeightedGraph:
    """Every edge reweighted to 1 (the ``S = D`` regime)."""
    out = WeightedGraph(graph.num_vertices)
    for u, v, _ in graph.edges():
        out.add_edge(u, v, 1)
    return out


def with_scaled_weights(graph: WeightedGraph, factor: int
                        ) -> WeightedGraph:
    """Every weight multiplied by a positive integer ``factor``.

    Shortest paths (and hence all scheme guarantees) are invariant;
    useful for checking that size/round accounting depends on weights
    only through the ``log(poly n)`` word assumption.
    """
    if factor < 1:
        raise ParameterError(f"factor must be >= 1, got {factor}")
    out = WeightedGraph(graph.num_vertices)
    for u, v, w in graph.edges():
        out.add_edge(u, v, w * factor)
    return out


def with_perturbed_weights(graph: WeightedGraph,
                           seed: RandomLike = None,
                           spread: int = 1) -> WeightedGraph:
    """Add an independent ``{0..spread}`` jitter to every weight.

    Breaks shortest-path ties, giving the unique-shortest-paths setting
    the paper assumes for the ``S`` metric.
    """
    if spread < 0:
        raise ParameterError(f"spread must be >= 0, got {spread}")
    rng = _rng(seed)
    out = WeightedGraph(graph.num_vertices)
    for u, v, w in graph.edges():
        out.add_edge(u, v, w + rng.randint(0, spread))
    return out


def induced_subgraph(graph: WeightedGraph, vertices: Sequence[int]
                     ) -> WeightedGraph:
    """The induced subgraph on ``vertices``, relabelled to ``0..|S|-1``.

    Raises :class:`GraphError` if the result is disconnected (every
    consumer in this library needs connectivity).
    """
    chosen = sorted(set(vertices))
    index = {v: i for i, v in enumerate(chosen)}
    for v in chosen:
        if not 0 <= v < graph.num_vertices:
            raise GraphError(f"vertex {v} outside the graph")
    out = WeightedGraph(len(chosen))
    for u, v, w in graph.edges():
        if u in index and v in index:
            out.add_edge(index[u], index[v], w)
    out.require_connected()
    return out


def largest_component_subgraph(graph: WeightedGraph) -> WeightedGraph:
    """The induced subgraph on the largest connected component."""
    if graph.num_vertices == 0:
        return WeightedGraph(0)
    seen = set()
    best: list = []
    for start in graph.vertices():
        if start in seen:
            continue
        component = graph.connected_component(start)
        seen.update(component)
        if len(component) > len(best):
            best = component
    return induced_subgraph(graph, best)


def random_vertex_sample_subgraph(graph: WeightedGraph, size: int,
                                  seed: RandomLike = None,
                                  max_attempts: int = 50
                                  ) -> WeightedGraph:
    """A connected induced subgraph of ``size`` vertices, grown by a
    random BFS ball from a random seed vertex.

    Used by scale-down sweeps that need comparable topology across
    sizes.  Raises :class:`GraphError` when the graph is smaller than
    ``size``.
    """
    if size < 1:
        raise ParameterError(f"size must be >= 1, got {size}")
    if size > graph.num_vertices:
        raise GraphError(
            f"cannot sample {size} vertices from a graph on "
            f"{graph.num_vertices}")
    rng = _rng(seed)
    for _ in range(max_attempts):
        start = rng.randrange(graph.num_vertices)
        ball = [start]
        seen = {start}
        frontier = [start]
        while frontier and len(ball) < size:
            next_frontier = []
            for u in frontier:
                neighbors = sorted(graph.neighbors(u))
                rng.shuffle(neighbors)
                for v in neighbors:
                    if v not in seen:
                        seen.add(v)
                        ball.append(v)
                        next_frontier.append(v)
                        if len(ball) == size:
                            break
                if len(ball) == size:
                    break
            frontier = next_frontier
        if len(ball) == size:
            return induced_subgraph(graph, ball)
    raise GraphError(
        f"failed to grow a connected {size}-vertex ball in "
        f"{max_attempts} attempts")
