"""Workload graph generators.

The paper's algorithm targets arbitrary weighted networks, and its round
bound ``(n^(1/2+1/k) + D) * n^o(1)`` is most interesting when the
hop-diameter ``D`` is small while the shortest-path diameter ``S`` is
large.  The generators here cover the regimes the evaluation needs:

* **random_connected**        — Erdős–Rényi conditioned on connectivity,
* **random_geometric**        — mesh-like networks with large D,
* **grid**                    — worst-ish case ``D = Theta(sqrt(n))``,
* **ring_of_cliques**         — small D, heavy local congestion,
* **star_of_paths**           — small D with huge ``S`` under weights,
* **expander_like**           — random regular, ``D = O(log n)``,
* **weighted_small_world**    — ring + chords, the classic routing workload,
* **caterpillar_tree** / **random_tree** — tree-routing workloads (Thm 7),
* **barbell**                 — two dense blobs joined by a path.

Every generator takes an explicit ``random.Random`` (or a seed) so runs are
reproducible, and returns a connected :class:`WeightedGraph` with integer
weights in ``[1, max_weight]``.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Tuple, Union

from ..exceptions import ParameterError
from .weighted_graph import WeightedGraph

RandomLike = Union[int, random.Random, None]


def _rng(seed: RandomLike) -> random.Random:
    """Normalize a seed-or-Random argument into a ``random.Random``."""
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def _random_weight(rng: random.Random, max_weight: int) -> int:
    if max_weight < 1:
        raise ParameterError(f"max_weight must be >= 1, got {max_weight}")
    return rng.randint(1, max_weight)


def _ensure_connected_by_spanning_tree(graph: WeightedGraph,
                                       rng: random.Random,
                                       max_weight: int) -> None:
    """Add random-tree edges between components until connected."""
    n = graph.num_vertices
    if n <= 1:
        return
    component = [-1] * n
    comps: List[List[int]] = []
    for start in range(n):
        if component[start] != -1:
            continue
        comp_id = len(comps)
        members = graph.connected_component(start)
        for u in members:
            component[u] = comp_id
        comps.append(members)
    while len(comps) > 1:
        a = comps.pop()
        b = comps[-1]
        u = rng.choice(a)
        v = rng.choice(b)
        graph.add_edge(u, v, _random_weight(rng, max_weight))
        b.extend(a)


def random_connected(n: int, edge_probability: float = 0.05,
                     max_weight: int = 100,
                     seed: RandomLike = None) -> WeightedGraph:
    """Erdős–Rényi ``G(n, p)`` patched into connectivity.

    A uniform random spanning structure is added across components so the
    result is always connected (required by every routing algorithm here).
    """
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    if not 0.0 <= edge_probability <= 1.0:
        raise ParameterError(
            f"edge_probability must be in [0, 1], got {edge_probability}")
    rng = _rng(seed)
    graph = WeightedGraph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < edge_probability:
                graph.add_edge(u, v, _random_weight(rng, max_weight))
    _ensure_connected_by_spanning_tree(graph, rng, max_weight)
    return graph


def random_geometric(n: int, radius: Optional[float] = None,
                     max_weight: int = 100,
                     seed: RandomLike = None) -> WeightedGraph:
    """Random geometric graph on the unit square.

    Vertices are uniform points; an edge joins points within ``radius``.
    The default radius ``sqrt(2.5 ln n / (pi n))`` is slightly above the
    connectivity threshold.  Produces mesh-like networks with
    ``D = Theta(1/radius)``.
    """
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    rng = _rng(seed)
    if radius is None:
        radius = math.sqrt(2.5 * math.log(max(n, 2)) / (math.pi * n))
    points: List[Tuple[float, float]] = [(rng.random(), rng.random())
                                         for _ in range(n)]
    graph = WeightedGraph(n)
    r2 = radius * radius
    for u in range(n):
        xu, yu = points[u]
        for v in range(u + 1, n):
            xv, yv = points[v]
            if (xu - xv) ** 2 + (yu - yv) ** 2 <= r2:
                graph.add_edge(u, v, _random_weight(rng, max_weight))
    _ensure_connected_by_spanning_tree(graph, rng, max_weight)
    return graph


def grid(rows: int, cols: int, max_weight: int = 100,
         seed: RandomLike = None) -> WeightedGraph:
    """``rows x cols`` grid; ``D = rows + cols - 2``."""
    if rows < 1 or cols < 1:
        raise ParameterError("grid dimensions must be >= 1")
    rng = _rng(seed)
    graph = WeightedGraph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                graph.add_edge(u, u + 1, _random_weight(rng, max_weight))
            if r + 1 < rows:
                graph.add_edge(u, u + cols, _random_weight(rng, max_weight))
    return graph


def ring_of_cliques(num_cliques: int, clique_size: int,
                    max_weight: int = 100,
                    seed: RandomLike = None) -> WeightedGraph:
    """``num_cliques`` cliques of ``clique_size`` joined in a ring.

    Small hop-diameter relative to ``n`` but heavy intra-clique congestion;
    stresses the CONGEST capacity accounting.
    """
    if num_cliques < 1 or clique_size < 1:
        raise ParameterError("num_cliques and clique_size must be >= 1")
    rng = _rng(seed)
    n = num_cliques * clique_size
    graph = WeightedGraph(n)
    for c in range(num_cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                graph.add_edge(base + i, base + j,
                               _random_weight(rng, max_weight))
    if num_cliques > 1:
        for c in range(num_cliques):
            u = c * clique_size
            v = ((c + 1) % num_cliques) * clique_size
            if not graph.has_edge(u, v):
                graph.add_edge(u, v, _random_weight(rng, max_weight))
    return graph


def star_of_paths(num_arms: int, arm_length: int,
                  heavy_weight: int = 1000,
                  seed: RandomLike = None) -> WeightedGraph:
    """A hub with ``num_arms`` paths of ``arm_length``, plus unit chords.

    Arm edges get weight 1 while hub chords get ``heavy_weight``; shortest
    paths then prefer walking along arms through many hops, so ``S`` is
    large while ``D`` (through the hub) stays ``O(arm_length)`` — the regime
    separating this paper's bound from [LP15]'s ``Õ(S + n^(1/k))`` variant.
    """
    if num_arms < 1 or arm_length < 1:
        raise ParameterError("num_arms and arm_length must be >= 1")
    n = 1 + num_arms * arm_length
    graph = WeightedGraph(n)
    for arm in range(num_arms):
        prev = 0
        for step in range(arm_length):
            node = 1 + arm * arm_length + step
            weight = heavy_weight if prev == 0 else 1
            graph.add_edge(prev, node, weight)
            prev = node
    return graph


def expander_like(n: int, degree: int = 4, max_weight: int = 100,
                  seed: RandomLike = None) -> WeightedGraph:
    """Random near-regular multigraph collapsed to a simple graph.

    Uses the configuration-model pairing and drops loops/multi-edges, then
    patches connectivity.  ``D = O(log n)`` with high probability, the
    small-diameter regime where the additive ``D`` term vanishes.
    """
    if n < 2:
        raise ParameterError(f"n must be >= 2, got {n}")
    if degree < 2:
        raise ParameterError(f"degree must be >= 2, got {degree}")
    rng = _rng(seed)
    stubs = [u for u in range(n) for _ in range(degree)]
    rng.shuffle(stubs)
    graph = WeightedGraph(n)
    for i in range(0, len(stubs) - 1, 2):
        u, v = stubs[i], stubs[i + 1]
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, _random_weight(rng, max_weight))
    _ensure_connected_by_spanning_tree(graph, rng, max_weight)
    return graph


def weighted_small_world(n: int, chords: Optional[int] = None,
                         max_weight: int = 100,
                         seed: RandomLike = None) -> WeightedGraph:
    """Ring plus random chords (Watts–Strogatz-flavoured)."""
    if n < 3:
        raise ParameterError(f"n must be >= 3, got {n}")
    rng = _rng(seed)
    if chords is None:
        chords = n
    graph = WeightedGraph(n)
    for u in range(n):
        graph.add_edge(u, (u + 1) % n, _random_weight(rng, max_weight))
    added = 0
    attempts = 0
    while added < chords and attempts < 20 * chords:
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, _random_weight(rng, max_weight))
            added += 1
    return graph


def path(n: int, max_weight: int = 100,
         seed: RandomLike = None) -> WeightedGraph:
    """A simple path; the extreme ``D = S = n - 1`` workload."""
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    rng = _rng(seed)
    graph = WeightedGraph(n)
    for u in range(n - 1):
        graph.add_edge(u, u + 1, _random_weight(rng, max_weight))
    return graph


def random_tree(n: int, max_weight: int = 100,
                seed: RandomLike = None) -> WeightedGraph:
    """Uniform random recursive tree (each vertex attaches to a prior one)."""
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    rng = _rng(seed)
    graph = WeightedGraph(n)
    for v in range(1, n):
        u = rng.randrange(v)
        graph.add_edge(u, v, _random_weight(rng, max_weight))
    return graph


def caterpillar_tree(spine: int, legs_per_node: int, max_weight: int = 100,
                     seed: RandomLike = None) -> WeightedGraph:
    """A spine path with ``legs_per_node`` leaves per spine vertex.

    Heavy-path / heavy-child structure is degenerate here, exercising the
    tree-routing scheme's interval logic.
    """
    if spine < 1 or legs_per_node < 0:
        raise ParameterError("spine must be >= 1 and legs_per_node >= 0")
    rng = _rng(seed)
    n = spine * (1 + legs_per_node)
    graph = WeightedGraph(n)
    for s in range(spine - 1):
        graph.add_edge(s, s + 1, _random_weight(rng, max_weight))
    next_node = spine
    for s in range(spine):
        for _ in range(legs_per_node):
            graph.add_edge(s, next_node, _random_weight(rng, max_weight))
            next_node += 1
    return graph


def barbell(blob_size: int, bridge_length: int, max_weight: int = 100,
            seed: RandomLike = None) -> WeightedGraph:
    """Two cliques of ``blob_size`` joined by a path of ``bridge_length``."""
    if blob_size < 1 or bridge_length < 1:
        raise ParameterError("blob_size and bridge_length must be >= 1")
    rng = _rng(seed)
    n = 2 * blob_size + bridge_length - 1
    graph = WeightedGraph(n)
    for base in (0, blob_size + bridge_length - 1):
        for i in range(blob_size):
            for j in range(i + 1, blob_size):
                graph.add_edge(base + i, base + j,
                               _random_weight(rng, max_weight))
    prev = blob_size - 1
    for step in range(bridge_length):
        node = blob_size + step
        if node >= blob_size + bridge_length - 1:
            node = blob_size + bridge_length - 1
        if prev != node and not graph.has_edge(prev, node):
            graph.add_edge(prev, node, _random_weight(rng, max_weight))
        prev = node
    return graph


#: Name -> zero-argument factory for a small instance of each family;
#: used by property tests to sweep every generator.
SMALL_INSTANCES = {
    "random_connected": lambda: random_connected(24, 0.15, seed=1),
    "random_geometric": lambda: random_geometric(24, seed=2),
    "grid": lambda: grid(5, 5, seed=3),
    "ring_of_cliques": lambda: ring_of_cliques(4, 5, seed=4),
    "star_of_paths": lambda: star_of_paths(4, 5, seed=5),
    "expander_like": lambda: expander_like(24, 4, seed=6),
    "weighted_small_world": lambda: weighted_small_world(24, seed=7),
    "path": lambda: path(16, seed=8),
    "random_tree": lambda: random_tree(24, seed=9),
    "caterpillar_tree": lambda: caterpillar_tree(6, 3, seed=10),
    "barbell": lambda: barbell(6, 5, seed=11),
}
