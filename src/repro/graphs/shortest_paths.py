"""Reference (centralized) shortest-path computations.

These are the *oracles* the test suite and the stretch-evaluation harness
use to validate the distributed constructions; they are also substrates for
the centralized baselines ([TZ01], [TZ05]).  Everything here is exact.

Notation follows the paper:

* ``d_G(u, v)``      — shortest-path distance,
* ``d^(t)_G(u, v)``  — *t-hop-bounded* distance: the least weight of a path
  with at most ``t`` edges (``INF`` if no such path), Section 2,
* ``h(u, v)``        — number of hops on a/the shortest path.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from .weighted_graph import WeightedGraph

#: Sentinel for "unreachable"; safe to add small weights to without overflow.
INF = float("inf")


def dijkstra(graph: WeightedGraph, source: int
             ) -> Tuple[List[float], List[Optional[int]]]:
    """Single-source shortest paths.

    Returns ``(dist, parent)`` where ``dist[v]`` is ``d_G(source, v)`` and
    ``parent[v]`` is the predecessor of ``v`` on a shortest path from
    ``source`` (``None`` for the source itself and unreachable vertices).

    Ties are broken toward the smaller parent vertex id, which makes the
    shortest-path forest deterministic — tests rely on this.
    """
    n = graph.num_vertices
    dist: List[float] = [INF] * n
    parent: List[Optional[int]] = [None] * n
    dist[source] = 0
    heap: List[Tuple[float, int, int]] = [(0, source, -1)]
    done = [False] * n
    while heap:
        d, u, from_v = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        if from_v >= 0:
            parent[u] = from_v
        for v, weight in graph.neighbor_weights(u):
            nd = d + weight
            if nd < dist[v] or (nd == dist[v] and not done[v]
                                and parent[v] is not None and u < parent[v]):
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    heapq.heappush(heap, (nd, v, u))
                else:
                    parent[v] = u
    return dist, parent


def dijkstra_distances(graph: WeightedGraph, source: int) -> List[float]:
    """Single-source shortest-path distances only."""
    return dijkstra(graph, source)[0]


def dijkstra_to_set(graph: WeightedGraph, roots: Sequence[int]
                    ) -> Tuple[List[float], List[Optional[int]]]:
    """Multi-root Dijkstra: distance to the nearest root.

    Returns ``(dist, nearest_root)`` where ``dist[v] = d_G(v, roots)`` and
    ``nearest_root[v]`` is the root realizing it (``None`` if unreachable,
    or when ``roots`` is empty, in which case ``dist[v] = INF``).

    This computes the exact *pivots* of the Thorup–Zwick hierarchy: for
    ``roots = A_i``, ``nearest_root[v]`` is an i-pivot of ``v``.
    """
    n = graph.num_vertices
    dist: List[float] = [INF] * n
    root_of: List[Optional[int]] = [None] * n
    heap: List[Tuple[float, int, int]] = []
    for r in sorted(roots):
        if dist[r] > 0 or root_of[r] is None:
            dist[r] = 0
            root_of[r] = r
            heap.append((0, r, r))
    heapq.heapify(heap)
    done = [False] * n
    while heap:
        d, u, root = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        root_of[u] = root
        for v, weight in graph.neighbor_weights(u):
            nd = d + weight
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v, root))
    return dist, root_of


def hop_bounded_distances(graph: WeightedGraph, source: int, max_hops: int
                          ) -> List[float]:
    """Exact ``d^(B)_G(source, .)`` for ``B = max_hops``.

    Implemented as ``max_hops`` rounds of Bellman–Ford relaxation, which is
    exactly the dynamic program defining hop-bounded distances.
    """
    n = graph.num_vertices
    dist: List[float] = [INF] * n
    dist[source] = 0
    frontier = {source}
    for _ in range(max_hops):
        if not frontier:
            break
        updates: Dict[int, float] = {}
        for u in frontier:
            du = dist[u]
            for v, weight in graph.neighbor_weights(u):
                nd = du + weight
                if nd < dist[v] and nd < updates.get(v, INF):
                    updates[v] = nd
        frontier = set()
        for v, nd in updates.items():
            if nd < dist[v]:
                dist[v] = nd
                frontier.add(v)
    return dist


def hop_distances(graph: WeightedGraph, source: int) -> List[float]:
    """Unweighted BFS hop distances from ``source``."""
    n = graph.num_vertices
    dist: List[float] = [INF] * n
    dist[source] = 0
    frontier = [source]
    level = 0
    while frontier:
        level += 1
        next_frontier = []
        for u in frontier:
            for v in graph.neighbors(u):
                if dist[v] == INF:
                    dist[v] = level
                    next_frontier.append(v)
        frontier = next_frontier
    return dist


def shortest_path_hops(graph: WeightedGraph, source: int
                       ) -> Tuple[List[float], List[int]]:
    """Distances plus hop counts ``h(source, .)`` along shortest paths.

    Among equal-weight paths the one with the fewest hops is chosen (and
    among those, deterministic parent tie-breaking), matching the paper's
    convention that shortest paths are unique.  Returns ``(dist, hops)``.
    """
    n = graph.num_vertices
    dist: List[float] = [INF] * n
    hops: List[int] = [0] * n
    dist[source] = 0
    heap: List[Tuple[float, int, int]] = [(0, 0, source)]
    done = [False] * n
    while heap:
        d, h, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        hops[u] = h
        for v, weight in graph.neighbor_weights(u):
            nd = d + weight
            if nd < dist[v] or (nd == dist[v] and not done[v]
                                and h + 1 < hops[v]):
                dist[v] = nd
                hops[v] = h + 1
                heapq.heappush(heap, (nd, h + 1, v))
    return dist, hops


def shortest_path(graph: WeightedGraph, source: int, target: int
                  ) -> Optional[List[int]]:
    """A shortest path from ``source`` to ``target`` as a vertex list.

    Returns ``None`` when ``target`` is unreachable.
    """
    dist, parent = dijkstra(graph, source)
    if dist[target] == INF:
        return None
    path = [target]
    while path[-1] != source:
        prev = parent[path[-1]]
        assert prev is not None
        path.append(prev)
    path.reverse()
    return path


def path_weight(graph: WeightedGraph, path: Sequence[int]) -> int:
    """Total weight of a path given as a vertex sequence."""
    total = 0
    for u, v in zip(path, path[1:]):
        total += graph.weight(u, v)
    return total


def all_pairs_distances(graph: WeightedGraph) -> List[List[float]]:
    """Exact all-pairs distances (one Dijkstra per vertex).

    Intended for tests and stretch evaluation on small/medium graphs.
    """
    return [dijkstra_distances(graph, s) for s in graph.vertices()]
