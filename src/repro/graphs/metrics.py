"""Graph-level metrics used by the paper's analysis.

* **hop-diameter** ``D`` — maximum hop-distance (number of edges, ignoring
  weights) between any two vertices,
* **weighted diameter** — maximum ``d_G(u, v)``,
* **shortest-path diameter** ``S`` — maximum number of hops a shortest path
  uses.  The paper stresses ``D <= S`` and that ``S`` can be ``Omega(n)``
  even when ``D`` is small; the [LP15] round bound depends on ``S`` while
  this paper's depends on ``D``.
"""

from __future__ import annotations

from typing import List

from .shortest_paths import INF, hop_distances, shortest_path_hops
from .weighted_graph import WeightedGraph


def eccentricity_hops(graph: WeightedGraph, source: int) -> int:
    """Maximum hop-distance from ``source`` to any reachable vertex."""
    dist = hop_distances(graph, source)
    finite = [d for d in dist if d != INF]
    return int(max(finite)) if finite else 0


def hop_diameter(graph: WeightedGraph) -> int:
    """The hop-diameter ``D`` of a connected graph.

    Computed exactly by one BFS per vertex; fine for simulation scales.
    """
    graph.require_connected()
    best = 0
    for source in graph.vertices():
        ecc = eccentricity_hops(graph, source)
        if ecc > best:
            best = ecc
    return best


def hop_diameter_estimate(graph: WeightedGraph) -> int:
    """A 2-approximation of ``D`` from a single BFS (lower bound <= D).

    The eccentricity of any vertex is between ``D/2`` and ``D``; we return
    twice the eccentricity of vertex 0, clamped to ``n - 1``.  Distributed
    algorithms may use this instead of the exact diameter.
    """
    graph.require_connected()
    if graph.num_vertices <= 1:
        return 0
    ecc = eccentricity_hops(graph, 0)
    return min(2 * ecc, graph.num_vertices - 1)


def weighted_diameter(graph: WeightedGraph) -> float:
    """Maximum shortest-path distance ``max_{u,v} d_G(u, v)``."""
    graph.require_connected()
    from .shortest_paths import dijkstra_distances
    best = 0.0
    for source in graph.vertices():
        dist = dijkstra_distances(graph, source)
        ecc = max(dist)
        if ecc > best:
            best = ecc
    return best


def shortest_path_diameter(graph: WeightedGraph) -> int:
    """The shortest-path diameter ``S``: max hops used by a shortest path.

    Uses the fewest-hops tie-breaking convention of
    :func:`repro.graphs.shortest_paths.shortest_path_hops` (the paper
    assumes unique shortest paths).
    """
    graph.require_connected()
    best = 0
    for source in graph.vertices():
        _, hops = shortest_path_hops(graph, source)
        ecc = max(hops)
        if ecc > best:
            best = ecc
    return best


def degree_histogram(graph: WeightedGraph) -> List[int]:
    """``hist[d]`` = number of vertices of degree ``d``."""
    if graph.num_vertices == 0:
        return []
    max_deg = max(graph.degree(u) for u in graph.vertices())
    hist = [0] * (max_deg + 1)
    for u in graph.vertices():
        hist[graph.degree(u)] += 1
    return hist
