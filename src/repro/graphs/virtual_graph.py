"""Dominating virtual graphs (paper, Section 2).

A *virtual graph* on ``G`` is a graph ``G' = (V', E', w')`` with
``V' ⊆ V`` whose distances dominate those of ``G``:
``d_G'(u, v) >= d_G(u, v)`` for all ``u, v ∈ V'``.  In the distributed
setting every vertex of ``V'`` knows the virtual edges touching it, but the
edges themselves are not network links — Bellman–Ford over a virtual graph
is executed by broadcasting over the real network (Lemma 1).

The paper builds two virtual graphs:

* ``G'``  — vertices ``V' = A_{ceil(k/2)}`` (plus a sample, for Theorem 3),
  edges from Theorem 1's ``(1+eps/2)``-approximate ``B``-hop distances,
* ``G''`` — ``G'`` plus the hopset ``F`` (hopset weights win conflicts).
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import GraphError
from .shortest_paths import INF
from .weighted_graph import WeightedGraph


class VirtualGraph:
    """A weighted graph on a subset of ``G``'s vertices.

    Unlike :class:`WeightedGraph`, vertices keep their *original* names
    from the base graph and weights may be any positive number (virtual
    weights are sums of approximate distances, not raw edge weights).
    """

    __slots__ = ("_vertices", "_adj")

    def __init__(self, vertices: Sequence[int]) -> None:
        self._vertices: List[int] = sorted(set(vertices))
        self._adj: Dict[int, Dict[int, float]] = {
            v: {} for v in self._vertices}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, weight: float) -> None:
        """Insert (or overwrite) the virtual edge ``{u, v}``."""
        if u not in self._adj or v not in self._adj:
            raise GraphError(f"virtual edge ({u}, {v}) touches a vertex "
                             "outside the virtual vertex set")
        if u == v:
            raise GraphError(f"virtual self-loop on {u} is not allowed")
        if weight <= 0:
            raise GraphError(f"virtual weight must be positive, got {weight}")
        self._adj[u][v] = weight
        self._adj[v][u] = weight

    def add_edge_if_shorter(self, u: int, v: int, weight: float) -> bool:
        """Insert ``{u, v}`` only if absent or currently heavier.

        Returns True when the edge was inserted/updated.
        """
        current = self._adj[u].get(v)
        if current is not None and current <= weight:
            return False
        self.add_edge(u, v, weight)
        return True

    def copy(self) -> "VirtualGraph":
        other = VirtualGraph(self._vertices)
        for u in self._vertices:
            for v, w in self._adj[u].items():
                if u < v:
                    other.add_edge(u, v, w)
        return other

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def vertices(self) -> List[int]:
        """The virtual vertex set, sorted by original name."""
        return list(self._vertices)

    def contains(self, u: int) -> bool:
        return u in self._adj

    def has_edge(self, u: int, v: int) -> bool:
        return u in self._adj and v in self._adj[u]

    def weight(self, u: int, v: int) -> float:
        try:
            return self._adj[u][v]
        except KeyError:
            raise GraphError(f"virtual edge ({u}, {v}) does not exist") \
                from None

    def neighbors(self, u: int) -> Iterator[int]:
        return iter(self._adj[u])

    def neighbor_weights(self, u: int) -> Iterator[Tuple[int, float]]:
        return iter(self._adj[u].items())

    def degree(self, u: int) -> int:
        return len(self._adj[u])

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        for u in self._vertices:
            for v, w in self._adj[u].items():
                if u < v:
                    yield (u, v, w)

    # ------------------------------------------------------------------
    # Distances (reference computations, used by tests/verification)
    # ------------------------------------------------------------------
    def dijkstra(self, source: int) -> Dict[int, float]:
        """Exact single-source distances within the virtual graph."""
        dist: Dict[int, float] = {v: INF for v in self._vertices}
        dist[source] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, source)]
        done = set()
        while heap:
            d, u = heapq.heappop(heap)
            if u in done:
                continue
            done.add(u)
            for v, w in self._adj[u].items():
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        return dist

    def hop_bounded_distances(self, source: int, max_hops: int
                              ) -> Dict[int, float]:
        """Exact ``d^(beta)``-style hop-bounded distances in this graph."""
        dist: Dict[int, float] = {v: INF for v in self._vertices}
        dist[source] = 0.0
        frontier = {source}
        for _ in range(max_hops):
            if not frontier:
                break
            updates: Dict[int, float] = {}
            for u in frontier:
                du = dist[u]
                for v, w in self._adj[u].items():
                    nd = du + w
                    if nd < dist[v] and nd < updates.get(v, INF):
                        updates[v] = nd
            frontier = set()
            for v, nd in updates.items():
                if nd < dist[v]:
                    dist[v] = nd
                    frontier.add(v)
        return dist

    def __repr__(self) -> str:
        return (f"VirtualGraph(|V'|={self.num_vertices}, "
                f"|E'|={self.num_edges})")


def verify_domination(base: WeightedGraph, virtual: VirtualGraph,
                      samples: Optional[Sequence[int]] = None) -> bool:
    """Check ``d_G'(u, v) >= d_G(u, v)`` for (a sample of) sources.

    Exhaustive over ``virtual.vertices()`` when ``samples`` is None.
    """
    from .shortest_paths import dijkstra_distances
    sources = list(samples) if samples is not None else virtual.vertices()
    for u in sources:
        base_dist = dijkstra_distances(base, u)
        virt_dist = virtual.dijkstra(u)
        for v, dv in virt_dist.items():
            if dv == INF:
                continue
            if dv < base_dist[v] - 1e-9:
                return False
    return True
