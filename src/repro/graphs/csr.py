"""Cached CSR adjacency view + scatter-min relaxation kernel.

The construction hot paths (Theorem-1 source detection, the Bellman–Ford
explorations) all walk adjacency lists edge by edge.  This module gives
them a shared flat substrate:

* :class:`CSRView` — the classic compressed-sparse-row triplet
  ``indptr`` / ``indices`` / ``weights`` over the *directed* edge set
  (each undirected edge appears once per endpoint), in exactly the
  neighbor order :meth:`WeightedGraph.neighbor_weights` yields.  That
  order pin matters: every tie-break in the reference implementations is
  "first neighbor scanned wins", and the CSR walk must agree with it.
* :func:`csr_view` — a cached accessor.  The view is stored on the graph
  and stamped with the graph's mutation version; ``add_edge`` /
  ``remove_edge`` bump the version, so a stale view is never returned
  (see ``graphs/README.md`` for the contract).
* :func:`relax_frontier` — one hop of Bellman–Ford from a frontier as a
  scatter-min over the CSR arrays.  With numpy the frontier's out-edges
  are gathered and reduced in a handful of vectorized operations; the
  pure-Python fallback (and the small-frontier fast path, where numpy
  call overhead dominates) runs the same first-strict-minimum scan the
  reference loops use.

Arrays are numpy ``int64``/``float64`` when numpy is importable and
plain lists otherwise; :data:`HAVE_NUMPY` tells callers which world they
are in (the kernel works in both).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from . import recording as _recording
from .weighted_graph import WeightedGraph

try:  # vectorized kernel when numpy is present
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

HAVE_NUMPY = _np is not None

INF = float("inf")

#: Below this many frontier out-edges the vectorized gather costs more
#: than the scalar scan it replaces (same rationale as the engine's
#: ``_VECTOR_THRESHOLD``).
_VECTOR_THRESHOLD = 32


class CSRView:
    """Flat CSR adjacency of a :class:`WeightedGraph` snapshot.

    ``indices[indptr[u]:indptr[u + 1]]`` are ``u``'s neighbors in the
    graph's own neighbor order, ``weights`` the matching edge weights.
    ``vectorized`` records whether the arrays are numpy (kernels branch
    on it, so a view built without numpy keeps working if numpy appears
    later in the process, and vice versa).
    """

    __slots__ = ("num_vertices", "indptr", "indices", "weights",
                 "vectorized", "_transpose")

    def __init__(self, graph: WeightedGraph) -> None:
        n = graph.num_vertices
        self.num_vertices = n
        indptr: List[int] = [0] * (n + 1)
        indices: List[int] = []
        weights: List[int] = []
        for u in range(n):
            for v, w in graph.neighbor_weights(u):
                indices.append(v)
                weights.append(w)
            indptr[u + 1] = len(indices)
        self.vectorized = HAVE_NUMPY
        self._transpose = None
        if HAVE_NUMPY:
            self.indptr = _np.asarray(indptr, dtype=_np.int64)
            self.indices = _np.asarray(indices, dtype=_np.int64)
            self.weights = _np.asarray(weights, dtype=_np.int64)
        else:
            self.indptr = indptr
            self.indices = indices
            self.weights = weights

    def transpose_order(self):
        """``(perm, src, dst)``: the directed edges stably sorted by
        target (numpy only; cached).

        ``perm`` permutes any edge-parallel array into that order;
        within one target the edges keep CSR order (ascending source,
        then neighbor order), so group-wise "first edge wins" scans
        reproduce the reference tie-breaks.  Restricting to a frontier
        is then a boolean mask over ``src`` instead of a per-hop sort.
        """
        cached = self._transpose
        if cached is None:
            perm = _np.argsort(self.indices, kind="stable")
            src = _np.repeat(
                _np.arange(self.num_vertices, dtype=_np.int64),
                _np.diff(self.indptr))[perm]
            cached = (perm, src, self.indices[perm])
            self._transpose = cached
        return cached

    @property
    def num_directed_edges(self) -> int:
        return len(self.indices)

    def weights_f64(self):
        """The weight array as float64 (numpy only)."""
        return self.weights.astype(_np.float64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CSRView(n={self.num_vertices}, "
                f"m2={self.num_directed_edges}, "
                f"vectorized={self.vectorized})")


def csr_view(graph: WeightedGraph) -> CSRView:
    """The graph's CSR view, rebuilt only after mutations.

    The cache lives on the graph (``_csr_cache``) keyed by the graph's
    mutation ``version`` and the numpy availability the view was built
    under; any ``add_edge``/``remove_edge`` invalidates it implicitly by
    bumping the version.
    """
    cache = graph._csr_cache
    version = graph.version
    if cache is not None and cache[0] == version \
            and cache[1] == HAVE_NUMPY:
        return cache[2]
    view = CSRView(graph)
    graph._csr_cache = (version, HAVE_NUMPY, view)
    return view


# ----------------------------------------------------------------------
# Scatter-min relaxation
# ----------------------------------------------------------------------
def relax_frontier(view: CSRView, dist_row, frontier: Sequence[int],
                   weights=None, unit=None, record=True,
                   threshold=None, strict=True
                   ) -> Tuple[Sequence[int], Sequence[float],
                              Sequence[int]]:
    """One Bellman–Ford hop from ``frontier`` over ``view``.

    Returns ``(targets, dists, vias)`` — the strictly improving
    relaxations against ``dist_row`` (which is *not* mutated):
    ``targets`` ascending, ``dists[i]`` the minimum candidate for
    ``targets[i]``, and ``vias[i]`` the frontier vertex that attained
    it, ties broken toward the earliest edge in CSR order.  Because the
    CSR order is the graph's neighbor order and ``frontier`` must be
    ascending, this is exactly the winner the reference loops pick
    (first strict minimum over a sorted frontier scan).

    ``weights`` substitutes a parallel weight array (e.g. the per-scale
    rounded weights of source detection), and ``unit`` declares the
    rounding unit those weights were derived under (``None`` = raw) —
    consumed only by support recording (:mod:`repro.graphs.recording`);
    ``record=False`` suppresses that recording for callers that filter
    winners through a join predicate and record the survivors
    themselves;
    ``threshold`` fuses a per-vertex join budget into the relaxation:
    a candidate for target ``v`` survives only if it beats
    ``threshold[v]`` (strictly when ``strict``, else non-strictly).
    Filtering *candidates* instead of winners is sound exactly for
    threshold-form rules: they are antitone in the distance, so a
    rejected group minimum implies every heavier candidate of that
    group is rejected too — the surviving winners are precisely the
    winners a post-hoc per-winner filter would keep.  Returned winners
    all passed the budget, so recording stays on;
    ``dist_row`` may be a list or a numpy ``float64`` row — the kernel
    picks the vectorized gather only when the view is numpy-backed and
    the frontier is large enough to amortize it.
    """
    if weights is None:
        weights = view.weights
    result = None
    if view.vectorized and dist_row is not None \
            and not isinstance(dist_row, list):
        indptr = view.indptr
        f = _np.asarray(frontier, dtype=_np.int64)
        starts = indptr[f]
        counts = indptr[f + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return (), (), ()
        if total >= _VECTOR_THRESHOLD:
            result = _relax_vector(view, dist_row, f, starts, counts,
                                   total, weights, threshold, strict)
    if result is None:
        result = _relax_scalar(view, dist_row, frontier, weights,
                               threshold, strict)
    if record:
        rec = _recording.active()
        if rec is not None and len(result[0]):
            rec.commit_pairs(zip((int(v) for v in result[2]),
                                 (int(t) for t in result[0])), unit)
    return result


def _gather_edge_indices(starts, counts, total):
    """Edge ids of the concatenated CSR slices ``[starts, starts+counts)``
    (the out-edges of a frontier, in CSR order)."""
    within = _np.arange(total, dtype=_np.int64)
    within -= _np.repeat(_np.cumsum(counts) - counts, counts)
    return _np.repeat(starts, counts) + within


def _relax_vector(view, dist_row, f, starts, counts, total, weights,
                  threshold=None, strict=True):
    """Vectorized gather + scatter-min (numpy arrays throughout)."""
    eidx = _gather_edge_indices(starts, counts, total)
    eu = _np.repeat(f, counts)
    ev = view.indices[eidx]
    cand = dist_row[eu] + weights[eidx]
    improving = cand < dist_row[ev]
    if threshold is not None:
        # the masked join compare, fused with the improvement mask
        budget = threshold[ev]
        improving &= (cand < budget) if strict else (cand <= budget)
    if not improving.any():
        return (), (), ()
    ev = ev[improving]
    eu = eu[improving]
    cand = cand[improving]
    best = _np.full(view.num_vertices, INF)
    _np.minimum.at(best, ev, cand)
    winners = cand == best[ev]
    via = _np.zeros(view.num_vertices, dtype=_np.int64)
    # reversed assignment: with repeated targets the last write wins, so
    # the *first* winning edge in CSR order supplies the parent.
    via[ev[winners][::-1]] = eu[winners][::-1]
    targets = _np.unique(ev)
    return targets, best[targets], via[targets]


def _relax_scalar(view, dist_row, frontier, weights,
                  threshold=None, strict=True):
    """First-strict-minimum scan, identical to the reference loops."""
    indptr = view.indptr
    indices = view.indices
    cand = {}
    for u in frontier:
        du = dist_row[u]
        if du == INF:
            continue
        for j in range(indptr[u], indptr[u + 1]):
            v = indices[j]
            nd = du + weights[j]
            if nd < dist_row[v]:
                if threshold is not None:
                    budget = threshold[v]
                    if (nd >= budget) if strict else (nd > budget):
                        continue
                best = cand.get(v)
                if best is None or nd < best[0]:
                    cand[v] = (nd, u)
    if not cand:
        return (), (), ()
    targets = sorted(cand)
    return (targets,
            [cand[t][0] for t in targets],
            [cand[t][1] for t in targets])


def out_neighbors(view: CSRView, v: int) -> List[int]:
    """``v``'s out-neighbors in CSR (= insertion) order, as a list.

    The scalar companion to :func:`frontier_neighbors`, shared by the
    cluster-splice dependency tests (:mod:`repro.dynamic.splice`) so
    reach/scan sets are computed identically with and without numpy.
    """
    nbrs = view.indices[view.indptr[v]:view.indptr[v + 1]]
    return nbrs.tolist() if view.vectorized else list(nbrs)


def frontier_neighbors(view: CSRView, frontier: Sequence[int]):
    """The union of the frontier's out-neighborhoods, ascending.

    Used by the exploration loops for congestion/overlap sampling: the
    vertices that receive at least one candidate this hop.
    """
    if view.vectorized:
        f = _np.asarray(frontier, dtype=_np.int64)
        starts = view.indptr[f]
        counts = view.indptr[f + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return ()
        eidx = _gather_edge_indices(starts, counts, total)
        return _np.unique(view.indices[eidx])
    indptr = view.indptr
    indices = view.indices
    seen = set()
    for u in frontier:
        seen.update(indices[indptr[u]:indptr[u + 1]])
    return sorted(seen)
