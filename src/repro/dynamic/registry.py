"""Versioned on-disk artifact registry with atomic publication.

The serving side (pool workers, the traffic server) consumes compiled
``.cra`` artifacts; the dynamic control plane produces a fresh one per
rebuild.  :class:`ArtifactRegistry` is the durable handoff between the
two: a directory of **generation-numbered** artifact files plus one
``manifest.json`` describing them.

Guarantees:

* **Monotonic generations** — every :meth:`publish` allocates the next
  integer; numbers are never reused, even across retirements and
  process restarts (``next_generation`` persists in the manifest).
* **Atomic manifest** — the manifest is rewritten via write-temp +
  ``fsync`` + ``os.replace`` (and the directory is fsynced after the
  rename), so a reader never observes a torn manifest and a published
  manifest survives a power loss; the
  artifact file is fully written (and checksummed) *before* the
  manifest mentions it, so every generation the manifest lists is
  loadable.
* **Pin beats retire** — :meth:`pin` marks a generation as protected
  (a rollback anchor); :meth:`retire` refuses pinned generations and
  otherwise deletes the payload while keeping the manifest row as an
  audit record.

The registry stores *files*, not live objects: publishing goes through
the artifact's own versioned ``save()`` format and loading through
:func:`repro.core.compiled.load_artifact`, so anything the registry
hands out went through the same integrity checks as any other ``.cra``
file.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..exceptions import ArtifactError, ParameterError
from ..core.compiled import load_artifact
from ..telemetry.trace import maybe_span

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = 1


@dataclass
class GenerationRecord:
    """One manifest row: a published artifact generation."""

    generation: int
    kind: str                    #: artifact kind ("routing", ...)
    filename: str                #: payload file, relative to the root
    sha256: str                  #: digest of the payload file
    num_vertices: int
    created: float               #: unix timestamp of publication
    fingerprint: Optional[str] = None   #: graph fingerprint, if known
    pinned: bool = False
    retired: bool = False
    note: str = ""

    def describe(self) -> str:
        flags = "".join(c for c, on in (("P", self.pinned),
                                        ("R", self.retired)) if on)
        fp = (self.fingerprint[:12] if self.fingerprint else "-")
        return (f"gen {self.generation:>4}  {self.kind:<12} "
                f"n={self.num_vertices:<6} fp={fp:<12} "
                f"[{flags or ' '}] {self.note}")


class ArtifactRegistry:
    """Directory-backed registry of generation-numbered artifacts."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._records: Dict[int, GenerationRecord] = {}
        self._next_generation = 1
        self._load_manifest()

    # -- manifest persistence -------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def _load_manifest(self) -> None:
        path = self.manifest_path
        if not path.exists():
            return
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise ArtifactError(
                f"{path}: unreadable registry manifest: {exc}") from exc
        if data.get("format") != MANIFEST_FORMAT:
            raise ArtifactError(
                f"{path}: manifest format {data.get('format')!r} "
                f"(this build reads format {MANIFEST_FORMAT})")
        self._next_generation = int(data["next_generation"])
        for row in data["generations"]:
            record = GenerationRecord(**row)
            self._records[record.generation] = record

    def _write_manifest(self) -> None:
        data = {
            "format": MANIFEST_FORMAT,
            "next_generation": self._next_generation,
            "generations": [asdict(self._records[g])
                            for g in sorted(self._records)],
        }
        tmp = self.manifest_path.with_suffix(".json.tmp")
        with open(tmp, "w") as fh:
            fh.write(json.dumps(data, indent=2, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.manifest_path)
        # fsync the directory so the rename itself is durable; some
        # filesystems refuse O_RDONLY directory fds — best effort there
        try:
            dir_fd = os.open(self.root, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(dir_fd)
        except OSError:
            pass
        finally:
            os.close(dir_fd)

    # -- publication lifecycle ------------------------------------------
    def publish(self, artifact, fingerprint: Optional[str] = None,
                note: str = "") -> GenerationRecord:
        """Persist ``artifact`` as the next generation.

        The payload file is fully written and checksummed before the
        manifest is swapped in, so a crash mid-publish leaves at worst
        an orphaned payload file the manifest never references.
        """
        generation = self._next_generation
        with maybe_span("registry.publish",
                        attrs={"generation": generation}):
            filename = f"gen-{generation:06d}.cra"
            path = self.root / filename
            artifact.save(path)
            record = GenerationRecord(
                generation=generation,
                kind=artifact.kind,
                filename=filename,
                sha256=_file_sha256(path),
                num_vertices=artifact.num_vertices,
                created=time.time(),
                fingerprint=fingerprint,
                note=note,
            )
            self._next_generation = generation + 1
            self._records[generation] = record
            self._write_manifest()
        return record

    def pin(self, generation: int) -> GenerationRecord:
        """Protect a generation from retirement (a rollback anchor)."""
        record = self.get(generation)
        if record.retired:
            raise ArtifactError(
                f"generation {generation} is retired; cannot pin")
        record.pinned = True
        self._write_manifest()
        return record

    def unpin(self, generation: int) -> GenerationRecord:
        record = self.get(generation)
        record.pinned = False
        self._write_manifest()
        return record

    def retire(self, generation: int) -> GenerationRecord:
        """Delete a generation's payload (the manifest row stays as an
        audit record).  Pinned generations refuse."""
        record = self.get(generation)
        if record.pinned:
            raise ArtifactError(
                f"generation {generation} is pinned; unpin before "
                "retiring")
        if not record.retired:
            record.retired = True
            try:
                (self.root / record.filename).unlink()
            except FileNotFoundError:
                pass
            self._write_manifest()
        return record

    # -- lookup ----------------------------------------------------------
    def get(self, generation: int) -> GenerationRecord:
        try:
            return self._records[generation]
        except KeyError:
            raise ParameterError(
                f"unknown generation {generation}; registry holds "
                f"{sorted(self._records) or 'none'}") from None

    def generations(self, kind: Optional[str] = None,
                    include_retired: bool = True
                    ) -> List[GenerationRecord]:
        """All manifest rows, ascending by generation."""
        return [r for g, r in sorted(self._records.items())
                if (kind is None or r.kind == kind)
                and (include_retired or not r.retired)]

    def latest(self, kind: Optional[str] = None
               ) -> Optional[GenerationRecord]:
        """The newest live (non-retired) generation, if any."""
        live = self.generations(kind=kind, include_retired=False)
        return live[-1] if live else None

    def find_fingerprint(self, fingerprint: str
                         ) -> List[GenerationRecord]:
        """Every live generation published for this graph fingerprint
        (ascending) — lets a control plane skip re-publishing a state
        it already shipped."""
        return [r for r in self.generations(include_retired=False)
                if r.fingerprint == fingerprint]

    def load(self, generation: int):
        """Load a generation's artifact, verifying its checksum."""
        record = self.get(generation)
        if record.retired:
            raise ArtifactError(
                f"generation {generation} is retired; its payload is "
                "gone")
        path = self.root / record.filename
        if not path.exists():
            raise ArtifactError(
                f"generation {generation}: payload {path} is missing "
                "(registry directory modified externally?)")
        digest = _file_sha256(path)
        if digest != record.sha256:
            raise ArtifactError(
                f"generation {generation}: payload checksum mismatch "
                f"({digest[:12]} != manifest {record.sha256[:12]})")
        return load_artifact(path)

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        live = sum(1 for r in self._records.values() if not r.retired)
        return (f"ArtifactRegistry({str(self.root)!r}, "
                f"generations={len(self._records)}, live={live})")


def _file_sha256(path: Path) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()
