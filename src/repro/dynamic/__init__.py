"""Live control plane: incremental rebuilds + versioned artifacts.

The static lifecycle (``build → compile → serve``) assumed the graph
never changes.  This package closes the loop for live topologies:

* :class:`TopologyFeed` — apply and log mutations of a live graph
  (weight updates, link failures, node failures) and classify the
  pending batch.
* :class:`IncrementalBuilder` — turn a pending batch into a fresh
  compiled artifact via the cheapest *provably sound* strategy
  (``reuse`` / ``compile-only`` / ``clusters`` / ``partial`` /
  ``full``), always bit-identical to a from-scratch build on the
  mutated graph.  ``clusters`` splices the previous build's per-source
  exploration and detection transcripts, re-running only the sources
  whose recorded reach set a net change touched
  (:mod:`repro.dynamic.splice`).
* :class:`ArtifactRegistry` — generation-numbered ``.cra`` store with
  an atomic manifest (publish / pin / retire), the durable handoff to
  the serving side's hot-swap (``RouterPool.swap`` /
  ``RequestBroker.swap_router``).

See ``dynamic/README.md`` for the soundness arguments and the
end-to-end flow.
"""

from .feed import Change, ChangeBatch, TopologyFeed, graph_fingerprint
from .incremental import (
    STRATEGIES,
    BuildEntry,
    IncrementalBuilder,
    RebuildReport,
)
from .registry import ArtifactRegistry, GenerationRecord

__all__ = [
    "ArtifactRegistry",
    "BuildEntry",
    "Change",
    "ChangeBatch",
    "GenerationRecord",
    "IncrementalBuilder",
    "RebuildReport",
    "STRATEGIES",
    "TopologyFeed",
    "graph_fingerprint",
]
