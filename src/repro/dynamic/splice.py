"""Per-cluster splicing for the ``clusters`` rebuild strategy.

The expensive middle of a build is the small-level cluster growing:
one :func:`~repro.congest.bellman_ford.multi_source_exploration` call
per level, each fanning a bounded Bellman–Ford out of every level
center.  Within such a call the explorations are *independent per
source*: candidates for source ``s`` arise only from ``s``'s own
frontier, the join rule is a pure per-``(vertex, source, distance)``
predicate, and every tie-break (the lexsort key ``row * n + target``,
the ``(row, vertex)``-sorted frontier, the CSR candidate order) is
resolved *within* a source row — running any subset of the sources
reproduces exactly those sources' rows of the full run.

That independence turns the captured per-source event streams
(:class:`~repro.graphs.recording.ExplorationTrace`) into dependency
certificates.  For a weight-only batch, a source ``s`` is **dirty** —
its transcript could differ — only if:

* an edge whose weight *increased* is one of ``s``'s committed
  winners: a candidate crossing an edge that never produced an applied
  update for ``s`` lost a strict comparison (or the join), and a
  heavier candidate keeps losing both (join rules are antitone in the
  distance — this is the same soundness argument as the per-(edge,
  unit) compile-only certificate, applied per source);
* an edge whose weight *decreased* has an endpoint that ever held an
  applied estimate for ``s`` (including ``s`` itself): by induction
  the run is unchanged until some candidate first crosses the changed
  edge, which requires one endpoint to already be applied — so if
  neither endpoint is ever applied in the old run, no candidate ever
  crosses it in the new run either;
* the join threshold changed at a vertex ``s``'s exploration ever
  *scanned* — the applied vertices and their out-neighborhoods: the
  rule is only consulted at candidate targets, which are
  out-neighbors of the frontier.

The clean sources' results, support commits and event streams are then
replayed verbatim; only the dirty subset re-runs through the real
kernel.  The call-level statistics (``rounds``, ``iterations``,
``max_estimates_per_node``) are reconstructed from the merged event
streams with the exact arithmetic of the kernel loop, so the spliced
:class:`~repro.congest.bellman_ford.ExplorationResult` — and with it
the cost ledger and the compiled artifact bytes — is bit-identical to
a scratch run.  Any shape mismatch between the recorded trace and the
call at hand (different centers, budget, rule, …) falls back to a
plain traced call, which is trivially identical, so the ``clusters``
strategy is bit-identical *by construction* and the differential grid
only has to catch reconstruction bugs, not soundness bugs.

The same machinery covers **source detection**
(:func:`~repro.sketches.source_detection.detect_sources` — the middle
levels' detection pass and the large-scale preprocessing).  Detection
is per-source independent for the same reasons (the batched
union-frontier advance is bit-identical to per-source runs, and the
join rule is applied only when *materializing* the estimate
dictionaries, never during propagation), so the captured
:class:`~repro.graphs.recording.DetectionTrace` splits into per-source
unfiltered cell rows plus per-source ``edge -> rounding units`` commit
maps.  The dirty tests sharpen per rounding unit: a weight change is
visible to a scale only if it moves ``ceil(w / unit)``, so an increase
dirties a source only when the edge is among that source's committed
winners *at a unit the change actually moves*, and a decrease dirties
the sources whose finite-cell reach contains an endpoint.  Clean rows
are re-filtered through the (possibly re-derived) join rule at
materialization time, rounds come from the closed per-call charge
formula, and the scale grid is guarded by re-deriving
``num_scales`` on the mutated graph — any mismatch falls back to a
real traced call.

To keep the per-rebuild overhead proportional to the *dirty* work, the
inverted reach indexes (vertex/edge -> sources) are cached on
``ExplorationTrace.index`` and patched in place for the dirty sources
each rebuild, and clean support commits are replayed per edge rather
than per event.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..congest.bellman_ford import (
    _ESTIMATE_WORDS,
    ExplorationResult,
    JoinRule,
    multi_source_exploration,
)
from ..congest.metrics import congestion_rounds
from ..graphs import recording as _recording
from ..graphs.csr import csr_view, frontier_neighbors, out_neighbors
from ..graphs.recording import DetectionTrace, ExplorationTrace
from ..graphs.weighted_graph import WeightedGraph
from ..sketches.source_detection import (
    SourceDetectionResult,
    _charged_rounds,
    _scale_parameters,
    detect_sources,
)

#: Internal label for the dirty-subset re-run (popped and merged).
_SUB_LABEL = "__splice-subset__"

_EMPTY: frozenset = frozenset()


@dataclass
class SpliceStats:
    """What the splicer did across one rebuild's exploration calls."""

    calls: int = 0
    spliced_calls: int = 0
    rerun_calls: int = 0
    reused_sources: int = 0
    rebuilt_sources: int = 0
    fallbacks: List[str] = field(default_factory=list)


class ClusterSplicer:
    """Serves small-level explorations by splicing a previous build.

    Instantiated per ``clusters`` rebuild from the previous entry's
    recorder traces and the batch's net weight changes; its
    :meth:`explore` matches the ``small_level_explorer`` hook of
    :func:`repro.core.approx_clusters.build_approx_clusters`.
    """

    def __init__(self, traces: Dict[str, ExplorationTrace],
                 net: Sequence[Tuple[int, int, Optional[int],
                                     Optional[int]]]) -> None:
        self._traces = traces
        self._net = tuple(net)
        self.stats = SpliceStats()

    # -- the explorer hook -------------------------------------------
    def explore(self, graph: WeightedGraph, centers: Sequence[int],
                budget: int, rule: JoinRule, capacity_words: int,
                label: str) -> ExplorationResult:
        self.stats.calls += 1
        result = self._try_splice(graph, centers, budget, rule,
                                  capacity_words, label)
        if result is not None:
            self.stats.spliced_calls += 1
            return result
        self.stats.rerun_calls += 1
        return multi_source_exploration(graph, centers, budget, rule,
                                        capacity_words, trace_label=label)

    # -- splice machinery --------------------------------------------
    def _fallback(self, label: str, reason: str) -> None:
        self.stats.fallbacks.append(f"{label}: {reason}")

    def _try_splice(self, graph: WeightedGraph, centers: Sequence[int],
                    budget: int, rule: JoinRule, capacity_words: int,
                    label: str) -> Optional[ExplorationResult]:
        n = graph.num_vertices
        trace = self._traces.get(label)
        if not isinstance(trace, ExplorationTrace):
            self._fallback(label, "no-trace")
            return None
        rec = _recording.active()
        if rec is None or not rec.capture_explorations:
            self._fallback(label, "no-capturing-recorder")
            return None
        if n < 2:
            # a 1-vertex graph can hit the kernel's isolated-frontier
            # early-continue, which the reconstruction does not model
            self._fallback(label, "tiny-graph")
            return None
        if trace.sources != tuple(centers):
            self._fallback(label, "centers-changed")
            return None
        if trace.budget != budget or trace.capacity_words != capacity_words:
            self._fallback(label, "shape-changed")
            return None
        if trace.strict != rule.strict \
                or trace.exempt_sources != rule.exempt_sources:
            self._fallback(label, "rule-changed")
            return None
        if len(trace.threshold) != n or len(rule.threshold) != n:
            self._fallback(label, "threshold-shape")
            return None

        view = csr_view(graph)
        old_thr = trace.threshold
        new_thr = rule.threshold
        changed_thr = [w for w in range(n) if old_thr[w] != new_thr[w]]

        # inverted reach indexes from the recorded events, built on
        # first use and carried forward across rebuilds (the dirty
        # sources' contributions are patched below, so a cached index
        # always reflects ``trace.events`` exactly)
        if trace.index is not None:
            applied, won_edge = trace.index
        else:
            applied = {}
            won_edge = {}
            for s in trace.sources:
                applied.setdefault(s, set()).add(s)
            for s, evs in trace.events.items():
                for _t, v, via, _d in evs:
                    applied.setdefault(v, set()).add(s)
                    key = (via, v) if via < v else (v, via)
                    won_edge.setdefault(key, set()).add(s)

        dirty: Set[int] = set()
        for u, v, base, cur in self._net:
            if base is None or cur is None:      # defensive: weight-only
                self._fallback(label, "topology-in-net")
                return None
            key = (u, v) if u < v else (v, u)
            if cur > base:
                dirty |= won_edge.get(key, _EMPTY)
            else:
                dirty |= applied.get(u, _EMPTY)
                dirty |= applied.get(v, _EMPTY)
        for w in changed_thr:
            dirty |= applied.get(w, _EMPTY)
            for x in out_neighbors(view, w):
                dirty |= applied.get(x, _EMPTY)

        source_set = set(trace.sources)
        dirty &= source_set

        events: Dict[int, List[Tuple[int, int, int, float]]] = {}
        for s, evs in trace.events.items():
            if s not in dirty:
                events[s] = evs
        if dirty:
            multi_source_exploration(graph, sorted(dirty), budget, rule,
                                     capacity_words,
                                     trace_label=_SUB_LABEL)
            subtrace = rec.pop_trace(_SUB_LABEL)
            if subtrace is None:               # kernel path not tracing
                self._fallback(label, "subset-not-traced")
                return None
            events.update(subtrace.events)
            # patch the dirty sources' index contributions in place
            # (the old trace object is discarded, so mutating its
            # cached sets is safe); seeds stay — sources are unchanged
            for s in dirty:
                for _t, v, via, _d in trace.events.get(s, ()):
                    applied[v].discard(s)
                    key = (via, v) if via < v else (v, via)
                    won_edge[key].discard(s)
            for s in dirty:
                for _t, v, via, _d in subtrace.events.get(s, ()):
                    applied.setdefault(v, set()).add(s)
                    key = (via, v) if via < v else (v, via)
                    won_edge.setdefault(key, set()).add(s)
        self.stats.reused_sources += len(source_set) - len(dirty)
        self.stats.rebuilt_sources += len(dirty)

        # replay the clean sources' support commits per *edge* from the
        # inverted index — O(edges), not O(events) — committing exactly
        # the edges some clean source won (the dirty subset's re-run
        # already committed its own at the kernel)
        clean_won = [key for key, srcs in won_edge.items()
                     if not srcs.issubset(dirty)]
        if clean_won:
            rec.commit_pairs(clean_won)
        rec.add_trace(ExplorationTrace(
            label=label, sources=tuple(centers), budget=budget,
            capacity_words=capacity_words,
            threshold=tuple(rule.threshold), strict=rule.strict,
            exempt_sources=rule.exempt_sources, events=events,
            index=(applied, won_edge)))

        return _reconstruct(view, n, centers, budget, capacity_words,
                            events)

    # -- the detection hook ------------------------------------------
    def detect(self, graph: WeightedGraph, sources: Sequence[int],
               hop_bound: int, eps: float, bfs_tree, mode: str,
               join_rule: Optional[JoinRule],
               label: str) -> SourceDetectionResult:
        """The ``detection_hook`` of ``build_approx_clusters``: serve a
        :func:`detect_sources` call by splicing the recorded
        :class:`~repro.graphs.recording.DetectionTrace` where sound."""
        self.stats.calls += 1
        result = self._try_splice_detection(graph, sources, hop_bound,
                                            eps, bfs_tree, mode,
                                            join_rule, label)
        if result is not None:
            self.stats.spliced_calls += 1
            return result
        self.stats.rerun_calls += 1
        return detect_sources(graph, sources, hop_bound, eps,
                              bfs_tree=bfs_tree, mode=mode,
                              join_rule=join_rule, trace_label=label)

    def _try_splice_detection(self, graph: WeightedGraph,
                              sources: Sequence[int], hop_bound: int,
                              eps: float, bfs_tree, mode: str,
                              join_rule: Optional[JoinRule],
                              label: str
                              ) -> Optional[SourceDetectionResult]:
        n = graph.num_vertices
        trace = self._traces.get(label)
        if not isinstance(trace, DetectionTrace):
            self._fallback(label, "no-trace")
            return None
        rec = _recording.active()
        if rec is None or not rec.capture_explorations:
            self._fallback(label, "no-capturing-recorder")
            return None
        if trace.sources != tuple(sorted(set(sources))):
            self._fallback(label, "sources-changed")
            return None
        if (trace.hop_bound != hop_bound or trace.eps != eps
                or trace.mode != mode):
            self._fallback(label, "shape-changed")
            return None
        if _scale_parameters(graph, hop_bound) != trace.num_scales:
            # num_scales is the only max-weight input of the call: a
            # batch that shifts the power-of-two band changes every
            # scale's rounding unit, invalidating all per-unit evidence
            self._fallback(label, "scale-grid-changed")
            return None
        if join_rule is not None and len(join_rule.threshold) != n:
            self._fallback(label, "threshold-shape")
            return None

        # Per-edge changed-unit test: a weight change invisible at a
        # rounding unit (equal ceilings) is invisible to that entire
        # scale; the raw pseudo-unit ``None`` absorbs nothing.  An
        # *increase* dirties exactly the sources that committed the
        # edge as a winner at a changed unit (a never-winning candidate
        # lost a strict comparison and keeps losing when heavier); a
        # *decrease* dirties the sources whose hop-``B`` reach set —
        # the finite-cell set, identical at every scale because rounded
        # weights stay finite — contains an endpoint (a candidate can
        # only cross the edge from an already-reached endpoint).
        touched: Optional[Dict[int, Set[int]]] = None
        dirty: Set[int] = set()
        for u, v, base, cur in self._net:
            if base is None or cur is None:      # defensive: weight-only
                self._fallback(label, "topology-in-net")
                return None
            changed = {unit for unit in trace.units
                       if unit is None
                       or math.ceil(base / unit) != math.ceil(cur / unit)}
            if not changed:
                continue
            key = (u, v) if u < v else (v, u)
            if cur > base:
                for s, per_edge in trace.commits.items():
                    if s in dirty:
                        continue
                    bucket = per_edge.get(key)
                    if bucket is not None and bucket & changed:
                        dirty.add(s)
            else:
                if touched is None:
                    touched = {}
                    for s, row in trace.cells.items():
                        for w, _val, _p in row:
                            touched.setdefault(w, set()).add(s)
                dirty |= touched.get(u, _EMPTY)
                dirty |= touched.get(v, _EMPTY)

        dirty &= set(trace.sources)

        # the full run notes its scale grid unconditionally; keep that
        # side effect (idempotent when the dirty sub-run re-notes it)
        rec.note_scale_grid(hop_bound, trace.num_scales)

        cells: Dict[int, Tuple] = dict(trace.cells)
        commits = dict(trace.commits)
        if dirty:
            detect_sources(graph, sorted(dirty), hop_bound, eps,
                           bfs_tree=bfs_tree, mode=mode,
                           join_rule=join_rule, trace_label=_SUB_LABEL)
            subtrace = rec.pop_trace(_SUB_LABEL)
            if subtrace is None:               # kernel path not tracing
                self._fallback(label, "subset-not-traced")
                return None
            cells.update(subtrace.cells)
            commits.update(subtrace.commits)
        self.stats.reused_sources += len(trace.sources) - len(dirty)
        self.stats.rebuilt_sources += len(dirty)

        # replay the clean sources' per-unit support commits (the dirty
        # subset's re-run already committed its own at the kernel)
        rec.merge_edge_units(
            (key, bucket)
            for s in trace.sources if s not in dirty
            for key, bucket in trace.commits[s].items())
        rec.add_trace(DetectionTrace(
            label=label, sources=trace.sources, hop_bound=hop_bound,
            eps=eps, mode=mode, num_scales=trace.num_scales,
            units=trace.units, cells=cells, commits=commits))

        # materialize exactly as detect_sources does: iterate sources
        # in sorted order (dict insertion order feeds the virtual-graph
        # walk and with it the hopset rng trajectory), re-filter the
        # unfiltered cells under the call's join rule
        estimate: List[Dict[int, float]] = [dict() for _ in range(n)]
        parent: List[Dict[int, Optional[int]]] = [dict() for _ in range(n)]
        for s in trace.sources:
            exempt = (join_rule is None
                      or (join_rule.exempt_sources is not None
                          and s in join_rule.exempt_sources))
            if exempt:
                for u, value, p in cells[s]:
                    estimate[u][s] = value
                    parent[u][s] = p
            else:
                thr = join_rule.threshold
                strict = join_rule.strict
                for u, value, p in cells[s]:
                    if u != s and not (value < thr[u] if strict
                                       else value <= thr[u]):
                        continue
                    estimate[u][s] = value
                    parent[u][s] = p

        height = bfs_tree.height if bfs_tree is not None else 0
        rounds = _charged_rounds(len(trace.sources), hop_bound, eps,
                                 height, trace.num_scales)
        return SourceDetectionResult(sources=list(trace.sources),
                                     estimate=estimate, parent=parent,
                                     rounds=rounds, hop_bound=hop_bound,
                                     eps=eps, mode=mode)


def _reconstruct(view, n: int, sources: Sequence[int], budget: int,
                 capacity_words: int,
                 events: Dict[int, List[Tuple[int, int, int, float]]]
                 ) -> ExplorationResult:
    """Rebuild an :class:`ExplorationResult` from merged event streams.

    Mirrors the kernel loop's accounting exactly:

    * ``iterations`` counts charged (non-empty-frontier) iterations —
      one past the last applied update when the budget allows, because
      the final frontier is charged even if all of its candidates are
      rejected;
    * iteration 1's congestion is the source multiset's max
      multiplicity; iteration ``t``'s is the max per-vertex count of
      sources applied at that vertex in iteration ``t - 1``;
    * the max-estimates statistic samples, per iteration, the
      out-neighborhood of the *previous* frontier after the current
      iteration's updates are applied.
    """
    by_iter: Dict[int, List[Tuple[int, int]]] = {}
    last = 0
    for s, evs in events.items():
        for t, v, _via, _d in evs:
            by_iter.setdefault(t, []).append((s, v))
            if t > last:
                last = t
    executed = 0 if budget <= 0 or not sources else min(last + 1, budget)

    per_iter_words: List[int] = []
    if executed >= 1:
        per_iter_words.append(
            max(Counter(sources).values()) * _ESTIMATE_WORDS)
        for t in range(2, executed + 1):
            cnt = Counter(v for _s, v in by_iter[t - 1])
            per_iter_words.append(max(cnt.values()) * _ESTIMATE_WORDS)
    rounds = congestion_rounds(per_iter_words, capacity_words)

    src_sorted = sorted(set(sources))
    live: Counter = Counter(src_sorted)
    have: Set[Tuple[int, int]] = {(s, s) for s in src_sorted}
    frontier: List[int] = src_sorted
    max_live = 0
    for t in range(1, executed + 1):
        sampled = frontier_neighbors(view, frontier)
        updates = by_iter.get(t, ())
        for s, v in updates:
            if (s, v) not in have:
                have.add((s, v))
                live[v] += 1
        if len(sampled):
            m = max(live[int(v)] for v in sampled)
            if m > max_live:
                max_live = m
        frontier = sorted({v for _s, v in updates})

    dist: List[Dict[int, float]] = [dict() for _ in range(n)]
    parent: List[Dict[int, Optional[int]]] = [dict() for _ in range(n)]
    for s in src_sorted:
        dist[s][s] = 0.0
        parent[s][s] = None
    for s in sorted(events):
        for _t, v, via, d in events[s]:
            dist[v][s] = d
            parent[v][s] = via
    return ExplorationResult(dist=dist, parent=parent,
                             iterations=executed, rounds=rounds,
                             max_estimates_per_node=max_live)
