"""Topology feed: recorded mutations of a live :class:`WeightedGraph`.

The dynamic control plane (``ISSUE``: live rebuilds without downtime)
needs two things from the graph side:

* a **mutation log** — what changed since the last successful rebuild,
  so the :class:`~repro.dynamic.IncrementalBuilder` can classify the
  batch (pure weight churn vs topology edits vs a no-op round trip)
  and pick the cheapest sound rebuild strategy; and
* a **canonical fingerprint** — a digest of the graph's *exact*
  serving-relevant state, used both for net-zero detection and as the
  artifact-cache / registry key.

The feed wraps a live graph and applies every mutation immediately
(riding the graph's own ``version`` counter, so the cached CSR view and
every other derived structure invalidates exactly as for direct
mutation).  It adds nothing the graph does not already enforce — in
particular :meth:`update_edge_weight` refuses to invent topology, the
contract pinned in :mod:`repro.graphs.weighted_graph`.

Fingerprint semantics matter more than they look: two graphs with equal
edge *sets* but different adjacency **insertion order** compile to
different artifacts (neighbor order defines port numbers and every
first-scan tie-break).  :func:`graph_fingerprint` therefore hashes the
adjacency lists in order — removing and re-adding an edge lands at the
end of its endpoints' adjacency and correctly produces a *new*
fingerprint, while a weight flap that returns to the old weight
restores the old fingerprint bit for bit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..exceptions import GraphError
from ..graphs.weighted_graph import WeightedGraph


def graph_fingerprint(graph: WeightedGraph) -> str:
    """Order-sensitive digest of the graph's serving-relevant state.

    Covers ``n`` and every adjacency list *in insertion order* with
    weights.  Equal fingerprints imply a from-scratch build would be
    byte-identical (same vertices, same edges, same weights, same
    neighbor order — the full input of the deterministic pipeline).
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(b"n=%d" % graph.num_vertices)
    for u in range(graph.num_vertices):
        h.update(b"\n%d:" % u)
        for v, w in graph.neighbor_weights(u):
            h.update(b" %d=%d" % (v, w))
    return h.hexdigest()


@dataclass(frozen=True)
class Change:
    """One applied mutation.  ``old``/``new`` are weights (``None`` for
    a side that does not exist: ``old=None`` means the edge was added,
    ``new=None`` removed)."""

    kind: str          #: "weight" | "add" | "remove"
    u: int
    v: int
    old: Optional[int]
    new: Optional[int]


@dataclass(frozen=True)
class ChangeBatch:
    """The classified delta between the last rebuild and now.

    ``changes`` is the raw event log; ``net`` collapses it against the
    baseline (only edges whose effective state differs survive, as
    ``(u, v, base_weight_or_None, current_weight_or_None)``).  The
    classification drives strategy selection:

    * ``net_zero`` — every event cancelled out *without* topology
      edits: the graph state (including adjacency order) equals the
      baseline.
    * ``increase_only`` — weight-only batch, every net change a strict
      increase: the precondition of the commit-certificate fast path.
    * ``topology_changed`` — an add/remove appeared anywhere in the
      log.  Even a remove+re-add of the same edge counts: it moves the
      edge to the end of the adjacency order, which changes ports.
    """

    changes: Tuple[Change, ...]
    net: Tuple[Tuple[int, int, Optional[int], Optional[int]], ...]
    topology_changed: bool
    net_zero: bool
    increase_only: bool

    def __len__(self) -> int:
        return len(self.changes)

    def summary(self) -> str:
        kind = ("net-zero" if self.net_zero else
                "topology" if self.topology_changed else
                "increase-only" if self.increase_only else "weights")
        return f"{len(self.changes)} change(s), {len(self.net)} net, {kind}"


class TopologyFeed:
    """Apply and log mutations of one live graph.

    >>> feed = TopologyFeed(graph)
    >>> feed.update_edge_weight(3, 7, 120)   # applied immediately
    >>> feed.fail_node(9)                    # drops every incident edge
    >>> batch = feed.pending()               # classified delta
    >>> feed.mark_rebuilt()                  # new baseline after rebuild

    The baseline is the graph state at construction (or the last
    :meth:`mark_rebuilt`); :meth:`pending` classifies the delta against
    it.  The feed never buffers: the graph always reflects every call,
    so serving-side consumers that read the live graph see the newest
    state, and the graph's ``version`` / CSR-cache contract does all
    staleness management.
    """

    def __init__(self, graph: WeightedGraph) -> None:
        self.graph = graph
        self._log: List[Change] = []
        self._baseline: Dict[Tuple[int, int], int] = {}
        self.mark_rebuilt()

    # -- mutations -----------------------------------------------------
    def update_edge_weight(self, u: int, v: int, weight: int) -> None:
        """Change an existing edge's weight (raises if absent)."""
        old = self.graph.weight(u, v)
        self.graph.update_edge_weight(u, v, weight)
        self._log.append(Change("weight", *_key(u, v), old, weight))

    def fail_edge(self, u: int, v: int) -> None:
        """Remove the edge ``{u, v}`` (a hard link failure)."""
        old = self.graph.weight(u, v)
        self.graph.remove_edge(u, v)
        self._log.append(Change("remove", *_key(u, v), old, None))

    def restore_edge(self, u: int, v: int, weight: int) -> None:
        """(Re-)add the edge ``{u, v}``.  Note a restore after
        :meth:`fail_edge` appends to the adjacency order, so the graph
        does *not* return to its old fingerprint — weight flaps
        (:meth:`update_edge_weight` up and back) do."""
        if self.graph.has_edge(u, v):
            raise GraphError(
                f"edge ({u}, {v}) already exists; use "
                "update_edge_weight to change its weight")
        self.graph.add_edge(u, v, weight)
        self._log.append(Change("add", *_key(u, v), None, weight))

    def fail_node(self, v: int) -> List[Tuple[int, int, int]]:
        """Fail vertex ``v``: remove every incident edge (the vertex
        name stays — the paper's model has fixed ``V``).  Returns the
        removed ``(u, v, weight)`` edges so a caller can stage a later
        restore."""
        removed = [(u, v, wt) for u, wt in
                   list(self.graph.neighbor_weights(v))]
        for u, _same, wt in removed:
            self.graph.remove_edge(u, v)
            self._log.append(Change("remove", *_key(u, v), wt, None))
        return removed

    # -- inspection ----------------------------------------------------
    def fingerprint(self) -> str:
        """Fingerprint of the *current* graph state."""
        return graph_fingerprint(self.graph)

    @property
    def baseline_fingerprint(self) -> str:
        return self._baseline_fp

    def pending(self) -> ChangeBatch:
        """Classify everything applied since the last baseline."""
        current = {(u, v): w for u, v, w in self.graph.edges()}
        net = []
        for key in sorted(set(self._baseline) | set(current)):
            base = self._baseline.get(key)
            cur = current.get(key)
            if base != cur:
                net.append((key[0], key[1], base, cur))
        topology = any(c.kind != "weight" for c in self._log)
        net_zero = not net and not topology
        increase_only = (not topology and bool(net) and
                         all(base is not None and cur is not None
                             and cur > base
                             for _, _, base, cur in net))
        return ChangeBatch(changes=tuple(self._log), net=tuple(net),
                           topology_changed=topology,
                           net_zero=net_zero,
                           increase_only=increase_only)

    def mark_rebuilt(self) -> None:
        """Reset the baseline to the current graph state (called by the
        incremental builder after a successful rebuild)."""
        self._log = []
        self._baseline = {(u, v): w for u, v, w in self.graph.edges()}
        self._baseline_fp = graph_fingerprint(self.graph)

    def __repr__(self) -> str:
        return (f"TopologyFeed(n={self.graph.num_vertices}, "
                f"m={self.graph.num_edges}, "
                f"pending={len(self._log)})")


def _key(u: int, v: int) -> Tuple[int, int]:
    return (u, v) if u < v else (v, u)
