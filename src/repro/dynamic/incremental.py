"""Incremental rebuilds: the cheapest *sound* path to a fresh artifact.

:class:`IncrementalBuilder` consumes the pending :class:`ChangeBatch`
of a :class:`~repro.dynamic.TopologyFeed` and produces the same
``(CompiledScheme, DenseRoutingPlane)`` pair a from-scratch
``SchemePipeline.build()`` + ``compile()`` would produce on the mutated
graph — **bit for bit**.  Five strategies, tried cheapest first, each
with an explicit soundness argument; anything unproven falls back to a
full rebuild (the fallback rate is tracked and reported honestly):

``reuse``
    The current fingerprint matches a cached build — either the batch
    was net-zero (weight flaps cancelled out) or churn revisited a
    previously built topology (e.g. a failed-and-restored weight spike,
    the flap-dampening pattern real control planes see constantly).
    *Sound because* the fingerprint covers the entire build input —
    vertex count, edge set, weights **and adjacency insertion order**
    (see :func:`~repro.dynamic.feed.graph_fingerprint`) — and the whole
    pipeline is a deterministic function of that input plus the frozen
    parameters: equal fingerprint ⇒ a scratch build would be
    byte-identical to the cached one.

``compile-only``
    Weight increases confined to edges with **zero recorded commits**
    in the previous build's support transcript, with every recorded
    detection scale grid unchanged.  The construction objects are
    reused untouched; only the flat + dense artifacts are recompiled
    (compilation reads tree-parent edge weights from the live graph, so
    the new weights land in the tables).  *Sound because* every
    relaxation the construction ever applied was committed to the
    :class:`~repro.graphs.recording.SupportRecorder` at the kernel —
    an edge with no commit anywhere was never a winning edge in any
    exploration at any scale, hence contributed no value and no
    decision anywhere in the transcript, and a weight *increase* on a
    never-winning edge cannot create a new winner retroactively in the
    already-fixed transcript the scratch build would replay.  (The
    scale-grid guard pins the one global weight-derived parameter:
    each detection call's ``num_scales`` is the build's only consumer
    of ``max_weight()``, so an increase that keeps every recorded
    ``hop_bound -> num_scales`` pair unchanged — checked per grid, not
    via the blunt "max weight unchanged" — leaves every rounding-unit
    grid and round charge as scratch would recompute them.)  Tree
    edges always carry commits (tree parents arise from winning
    relaxations), so a certified edge is never a tree edge and the
    reused scheme's structure is exactly what scratch would rebuild.

``clusters``
    Any other weight-only batch whose previous entry carries captured
    per-source traces: rerun the construction exactly like ``partial``,
    **except** that each small-level cluster-growing call *and* each
    source-detection call (middle-level detection, large-scale
    preprocessing) — the dominant build phases — is served by the
    per-source splice of :mod:`repro.dynamic.splice`: only the sources
    whose recorded reach set a net change touched re-run through the
    kernel; every clean source's rows, support commits and events are
    replayed from the previous trace.  *Sound because* per-source
    explorations and detections are independent and the dirty tests are
    conservative (see the splice module docstring for the per-case
    arguments); any shape mismatch falls back per call to the plain
    traced call, so the strategy is bit-identical by construction and
    the differential grid pins the reconstruction arithmetic
    (rounds/iterations/max-estimates, detection round charges).

``partial``
    Weight-only batches the previous entry carries no exploration
    traces for (or with splicing disabled): rerun the cluster phase
    from scratch
    (sound by construction — it sees the new weights), rebuild the
    forest but substitute the previous per-tree scheme wherever the
    inputs are **provably unchanged** (identical tree shape in
    identical iteration order, identical splitter sample, weight-only
    batch so the port function is untouched), reassemble and recompile.
    *Sound because* the per-tree builder is a deterministic pure
    function of (tree, splitters, port_of): equal inputs make the
    substituted scheme equal to the one scratch would build, and the
    forest ledger is recomputed from the final scheme set either way.

``full``
    Everything else — topology edits (failures, restores, node
    failures: adjacency order and ports may shift), weight decreases,
    uncertified increases.  A plain from-scratch build.

Every strategy ends in the same place: a cache entry keyed by the new
fingerprint holding construction + compiled artifacts + the support
transcript, ready to be served, registered, or reused by a later flap.
"""

from __future__ import annotations

import random
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core import DenseRoutingPlane
from ..core.compiled import CompiledScheme
from ..core.tree_routing import ForestRoutingReport, build_forest_routing
from ..exceptions import ParameterError
from ..graphs.recording import SupportRecorder, recording
from ..pipeline import _run_construction
from ..sketches.source_detection import _scale_parameters
from ..telemetry.registry import MetricsRegistry
from ..telemetry.trace import maybe_span
from .feed import ChangeBatch, TopologyFeed
from .splice import ClusterSplicer

#: The strategies, cheapest first (also the order they are attempted).
STRATEGIES = ("reuse", "compile-only", "clusters", "partial", "full")


@dataclass
class BuildEntry:
    """One fully built topology state: everything needed to serve it,
    re-certify against it, or reuse pieces of it."""

    fingerprint: str
    construction: "ConstructionReport"
    compiled: CompiledScheme
    dense: DenseRoutingPlane
    recorder: Optional[SupportRecorder]
    max_weight: int
    splitter_sample: Tuple[int, ...]

    @property
    def forest(self) -> ForestRoutingReport:
        return self.construction.scheme.forest

    @property
    def rounds(self) -> int:
        return self.construction.rounds


@dataclass
class RebuildReport:
    """What one :meth:`IncrementalBuilder.rebuild` call did and cost."""

    strategy: str                 #: "initial" or one of STRATEGIES
    fingerprint: str
    duration_s: float
    entry: BuildEntry = field(repr=False)
    batch: Optional[ChangeBatch] = None
    fallback_reason: Optional[str] = None
    reused_trees: int = 0
    rebuilt_trees: int = 0
    cache_hit: bool = False
    #: ``clusters`` strategy only: per-source splice accounting across
    #: the small-level exploration calls, and the per-call reasons any
    #: of them fell back to a plain (still bit-identical) re-run.
    reused_clusters: int = 0
    rebuilt_clusters: int = 0
    spliced_levels: int = 0
    rerun_levels: int = 0
    splice_fallbacks: Tuple[str, ...] = ()
    #: Wall-clock seconds per rebuild stage (``classify`` — reading the
    #: pending batch + fingerprint; ``certify`` — the increase
    #: certification sweep, when attempted; ``construct`` — the chosen
    #: strategy's build/compile body; ``install`` — cache + feed
    #: baseline bookkeeping).  Stages sum to ~``duration_s``.
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    # -- passthroughs ---------------------------------------------------
    @property
    def compiled(self) -> CompiledScheme:
        return self.entry.compiled

    @property
    def dense(self) -> DenseRoutingPlane:
        return self.entry.dense

    @property
    def construction(self):
        return self.entry.construction

    @property
    def rounds(self) -> int:
        return self.entry.rounds

    def summary(self) -> str:
        line = (f"strategy={self.strategy} "
                f"duration={self.duration_s * 1e3:.1f}ms "
                f"fingerprint={self.fingerprint[:12]}")
        if self.batch is not None:
            line += f" batch=[{self.batch.summary()}]"
        if self.fallback_reason:
            line += f" fallback={self.fallback_reason!r}"
        if self.reused_trees or self.rebuilt_trees:
            line += (f" trees={self.reused_trees} reused /"
                     f" {self.rebuilt_trees} rebuilt")
        if self.reused_clusters or self.rebuilt_clusters:
            line += (f" clusters={self.reused_clusters} reused /"
                     f" {self.rebuilt_clusters} rebuilt")
        return line


class IncrementalBuilder:
    """Rebuild the scheme after feed mutations, as cheaply as soundness
    allows.

    >>> feed = TopologyFeed(graph)
    >>> builder = IncrementalBuilder(feed, k=3, seed=7)
    >>> initial = builder.build()            # full build, cached
    >>> feed.update_edge_weight(4, 9, 60)
    >>> report = builder.rebuild()           # picks a strategy
    >>> report.strategy, report.compiled     # bit-identical to scratch

    Construction parameters are frozen at the builder (they are part of
    the determinism argument — every strategy compares against "scratch
    with these exact parameters").  ``cache_size`` bounds the
    fingerprint-keyed LRU of built states; churn that revisits a cached
    topology is served from it (the ``reuse`` strategy).
    """

    def __init__(self, feed: TopologyFeed, k: int, seed: int = 0,
                 eps: float = 0.0, detection_mode: str = "rounded",
                 capacity_words: int = 2, use_tz_trick: bool = True,
                 engine: Optional[str] = None,
                 cache_size: int = 8,
                 enable_clusters: bool = True,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if cache_size < 1:
            raise ParameterError(
                f"cache_size must be >= 1, got {cache_size}")
        self._enable_clusters = enable_clusters
        self.feed = feed
        self._params = dict(k=k, seed=seed, eps_override=eps,
                            detection_mode=detection_mode,
                            capacity_words=capacity_words,
                            use_tz_trick=use_tz_trick, engine=engine)
        self._cache_size = cache_size
        self._cache: "OrderedDict[str, BuildEntry]" = OrderedDict()
        self._current: Optional[BuildEntry] = None
        self._counts: Dict[str, int] = {s: 0 for s in STRATEGIES}
        self._counts["initial"] = 0
        reg = registry if registry is not None else MetricsRegistry()
        self.registry = reg
        self._m_strategy = reg.counter(
            "repro_rebuild_strategy_total",
            "rebuilds by chosen strategy and fallback reason "
            "('none' when the strategy was not a fallback)",
            labelnames=("strategy", "reason"))
        self._m_splice_fallbacks = reg.counter(
            "repro_rebuild_splice_fallbacks_total",
            "per-call splice fallbacks by reason "
            "(clusters strategy only)",
            labelnames=("reason",))
        self._m_stage_seconds = reg.counter(
            "repro_rebuild_stage_seconds_total",
            "wall-clock seconds per rebuild stage",
            labelnames=("stage",))

    # -- public API -----------------------------------------------------
    @property
    def current(self) -> Optional[BuildEntry]:
        """The entry matching the feed's last-rebuilt baseline."""
        return self._current

    def build(self) -> RebuildReport:
        """Ensure an initial build exists (full build on first call;
        afterwards equivalent to :meth:`rebuild`)."""
        if self._current is None:
            start = time.perf_counter()
            with maybe_span("rebuild",
                            attrs={"strategy": "initial"}):
                entry = self._full_build()
                construct_s = time.perf_counter() - start
                t_install = time.perf_counter()
                self._install(entry, "initial")
            stage_seconds = {
                "construct": construct_s,
                "install": time.perf_counter() - t_install}
            report = RebuildReport(
                strategy="initial", fingerprint=entry.fingerprint,
                duration_s=time.perf_counter() - start, entry=entry,
                stage_seconds=stage_seconds)
            self._emit_telemetry(report)
            return report
        return self.rebuild()

    def rebuild(self) -> RebuildReport:
        """Process the feed's pending batch into a fresh build entry.

        Always leaves ``current`` matching the live graph and resets
        the feed baseline; the returned report says which strategy ran
        and, on fallback, why.
        """
        if self._current is None:
            return self.build()
        start = time.perf_counter()
        stage_seconds: Dict[str, float] = {}
        with maybe_span("rebuild") as rebuild_span:
            with maybe_span("rebuild.classify"):
                batch = self.feed.pending()
                fp = self.feed.fingerprint()
            stage_seconds["classify"] = time.perf_counter() - start
            with maybe_span("rebuild.strategy") as strategy_span:
                strategy, entry, reason, reused, rebuilt, hit, splice = \
                    self._dispatch(batch, fp, stage_seconds)
                strategy_span.set(strategy=strategy,
                                  reason=reason or "none")
            t_install = time.perf_counter()
            with maybe_span("rebuild.install"):
                self._install(entry, strategy)
            stage_seconds["install"] = time.perf_counter() - t_install
            rebuild_span.set(strategy=strategy,
                             fingerprint=fp[:12])
        report = RebuildReport(
            strategy=strategy, fingerprint=fp,
            duration_s=time.perf_counter() - start, entry=entry,
            batch=batch, fallback_reason=reason,
            reused_trees=reused, rebuilt_trees=rebuilt, cache_hit=hit,
            stage_seconds=stage_seconds)
        if splice is not None:
            report.reused_clusters = splice.reused_sources
            report.rebuilt_clusters = splice.rebuilt_sources
            report.spliced_levels = splice.spliced_calls
            report.rerun_levels = splice.rerun_calls
            report.splice_fallbacks = tuple(splice.fallbacks)
        self._emit_telemetry(report)
        return report

    def _emit_telemetry(self, report: RebuildReport) -> None:
        """One strategy count (labeled with the fallback reason), the
        per-call splice-fallback reasons, and the stage seconds."""
        self._m_strategy.labels(
            strategy=report.strategy,
            reason=report.fallback_reason or "none").inc()
        for fb_reason in report.splice_fallbacks:
            self._m_splice_fallbacks.labels(reason=fb_reason).inc()
        for stage, seconds in report.stage_seconds.items():
            self._m_stage_seconds.labels(stage=stage).inc(seconds)

    def stats(self) -> Dict[str, object]:
        """Strategy counters and the honest fallback rate (full
        rebuilds over all post-initial rebuilds)."""
        total = sum(self._counts[s] for s in STRATEGIES)
        return {
            "rebuilds": total,
            "by_strategy": dict(self._counts),
            "fallback_rate": (self._counts["full"] / total) if total
            else 0.0,
            "cache_entries": len(self._cache),
        }

    # -- strategy dispatch ----------------------------------------------
    def _timed(self, stage_seconds: Optional[Dict[str, float]],
               stage: str, fn, *args):
        """Run ``fn`` and accumulate its wall clock under ``stage``."""
        start = time.perf_counter()
        try:
            return fn(*args)
        finally:
            if stage_seconds is not None:
                stage_seconds[stage] = (
                    stage_seconds.get(stage, 0.0)
                    + time.perf_counter() - start)

    def _dispatch(self, batch: ChangeBatch, fp: str,
                  stage_seconds: Optional[Dict[str, float]] = None):
        """Returns (strategy, entry, fallback_reason, reused, rebuilt,
        cache_hit, splice_stats)."""
        cached = self._cache.get(fp)
        if cached is not None:
            self._cache.move_to_end(fp)
            return ("reuse", cached, None, 0, 0,
                    fp != self._current.fingerprint, None)

        if batch.topology_changed:
            entry = self._timed(stage_seconds, "construct",
                                self._full_build)
            return ("full", entry, "topology-changed",
                    0, 0, False, None)

        prev = self._current
        if batch.increase_only:
            reason = self._timed(stage_seconds, "certify",
                                 self._certify_increases, batch, prev)
            if reason is None:
                entry = self._timed(stage_seconds, "construct",
                                    self._compile_only, prev, fp)
                return ("compile-only", entry, None, 0, 0, False, None)
        else:
            reason = "weight-decrease-present"

        if (self._enable_clusters and prev.recorder is not None
                and prev.recorder.traces):
            entry, reused, rebuilt, splice = self._timed(
                stage_seconds, "construct",
                self._clusters_build, prev, batch)
            return ("clusters", entry, reason, reused, rebuilt, False,
                    splice)
        entry, reused, rebuilt = self._timed(
            stage_seconds, "construct", self._partial_build, prev)
        return ("partial", entry, reason, reused, rebuilt, False, None)

    def _certify_increases(self, batch: ChangeBatch,
                           prev: BuildEntry) -> Optional[str]:
        """None when every net increase is provably invisible to the
        previous build transcript; otherwise the reason it is not."""
        if prev.recorder is None:
            return "no-support-transcript"
        grids = prev.recorder.scale_grids
        if grids:
            # num_scales is the build's only max_weight() consumer:
            # unchanged grids => every rounding unit and round charge
            # is recomputed identically, whatever the new max weight
            for hop_bound, num_scales in grids.items():
                if _scale_parameters(self.feed.graph,
                                     hop_bound) != num_scales:
                    return f"scale-grid-changed-B{hop_bound}"
        elif self.feed.graph.max_weight() != prev.max_weight:
            # no recorded grids (transcript from an old build): fall
            # back to the blunt max-weight pin
            return "max-weight-changed"
        for u, v, base, cur in batch.net:
            if not prev.recorder.certifies_increase(u, v, base, cur):
                return f"edge-({u},{v})-in-support"
        return None

    # -- strategy implementations ---------------------------------------
    def _full_build(self) -> BuildEntry:
        builder, capture = self._forest_capture(prev=None)
        recorder = SupportRecorder(capture_explorations=True)
        with recording(recorder):
            construction = _run_construction(
                self.feed.graph, forest_builder=builder, **self._params)
        return self._finish_entry(construction, recorder,
                                  capture["splitters"])

    def _compile_only(self, prev: BuildEntry, fp: str) -> BuildEntry:
        # Same construction objects; compile() is uncached by design,
        # so both tiers pick up the live graph's new tree-parent
        # weights.  The support transcript is unchanged too — the
        # certified edges never appeared in it, so the replayed build
        # would commit exactly the same pairs.
        compiled = prev.construction.scheme.compile()
        return BuildEntry(fingerprint=fp,
                          construction=prev.construction,
                          compiled=compiled,
                          dense=DenseRoutingPlane.from_compiled(compiled),
                          recorder=prev.recorder,
                          max_weight=prev.max_weight,
                          splitter_sample=prev.splitter_sample)

    def _partial_build(self, prev: BuildEntry):
        builder, capture = self._forest_capture(prev=prev)
        recorder = SupportRecorder(capture_explorations=True)
        with recording(recorder):
            construction = _run_construction(
                self.feed.graph, forest_builder=builder, **self._params)
        entry = self._finish_entry(construction, recorder,
                                   capture["splitters"])
        stats = capture["stats"]
        return entry, stats["reused"], stats["rebuilt"]

    def _clusters_build(self, prev: BuildEntry, batch: ChangeBatch):
        # identical to _partial_build except that the small-level
        # exploration calls and the detection calls (middle level +
        # large-scale preprocessing) go through the per-source splice;
        # the rng trajectory and every other phase replay scratch
        # exactly, so the only delta a scratch diff could see is the
        # spliced ExplorationResults / SourceDetectionResults — which
        # the splice reconstructs bit-identically (or re-runs).
        splicer = ClusterSplicer(prev.recorder.traces, batch.net)
        builder, capture = self._forest_capture(prev=prev)
        recorder = SupportRecorder(capture_explorations=True)
        with recording(recorder):
            construction = _run_construction(
                self.feed.graph, forest_builder=builder,
                cluster_explorer=splicer.explore,
                detection_hook=splicer.detect, **self._params)
        entry = self._finish_entry(construction, recorder,
                                   capture["splitters"])
        stats = capture["stats"]
        return entry, stats["reused"], stats["rebuilt"], splicer.stats

    def _finish_entry(self, construction, recorder,
                      splitter_sample) -> BuildEntry:
        compiled = construction.scheme.compile()
        return BuildEntry(fingerprint=self.feed.fingerprint(),
                          construction=construction,
                          compiled=compiled,
                          dense=DenseRoutingPlane.from_compiled(compiled),
                          recorder=recorder,
                          max_weight=self.feed.graph.max_weight(),
                          splitter_sample=splitter_sample)

    def _forest_capture(self, prev: Optional[BuildEntry]):
        """A ``forest_builder`` that (a) records the splitter sample of
        the build it runs and (b), given a previous entry, substitutes
        per-tree schemes whose inputs are exactly unchanged."""
        capture = {"splitters": (), "stats": {"reused": 0, "rebuilt": 0}}
        stats = capture["stats"]

        def lookup(tree_id, tree, splitters):
            sample = capture["splitters"]
            if not sample:
                sample = tuple(sorted(splitters))
                capture["splitters"] = sample
            if prev is None:
                return None
            if sample != prev.splitter_sample:
                stats["rebuilt"] += 1
                return None
            old = prev.forest.schemes.get(tree_id)
            if old is None or not _same_tree(old.tree, tree):
                stats["rebuilt"] += 1
                return None
            stats["reused"] += 1
            return old

        def builder(trees, num_graph_vertices, rng, **kwargs):
            return build_forest_routing(trees, num_graph_vertices, rng,
                                        reuse_lookup=lookup, **kwargs)

        return builder, capture

    def _install(self, entry: BuildEntry, strategy: str) -> None:
        self._cache[entry.fingerprint] = entry
        self._cache.move_to_end(entry.fingerprint)
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
        self._current = entry
        self._counts[strategy] += 1
        self.feed.mark_rebuilt()


def _same_tree(a, b) -> bool:
    """Exact equality of two rooted trees *including parent-map
    iteration order* — the strictest notion, because downstream scans
    iterate the parent map in insertion order and the reuse proof needs
    the builder inputs literally equal, not just isomorphic."""
    return (a.root == b.root
            and list(a.parent_items()) == list(b.parent_items()))
