"""`RouterPool`: process-parallel batch serving over one shared artifact.

One pool = one compiled artifact + N persistent worker processes.  The
artifact is shipped once through a transport (``shared.py``), each call
to :meth:`RouterPool.route_many` / :meth:`RouterPool.estimate_many`
partitions the batch with a sharding policy (``sharding.py``), workers
serve their shards with the *same* single-process batch methods the
artifact already has, and the parent merges results back in input
order.  Because those batch methods are per-query deterministic, the
merged output is bit-identical to calling the artifact directly — the
contract pinned by ``tests/serving/test_pool_equivalence.py``.

Lifecycle: the pool is a context manager with deterministic shutdown —
``close()`` sentinels every worker, joins with a timeout, terminates
stragglers, drains both queues and releases the transport (unlinking
shared memory).  It is idempotent and also runs from the constructor's
error path, so no exception leaks processes or shm segments.

Error model: batch *input* errors are raised parent-side by the shared
``validate_pairs`` prepass before anything is dispatched — same
exception, same offending pair as the single-process path, and a bad
query can never take a worker down.  Anything a worker itself raises
mid-shard travels back over the result queue and re-raises in the
caller; a worker *dying* (signal, OOM) surfaces as
:class:`~repro.exceptions.ServingError` instead of a hang.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing as mp
import operator
import os
import pickle
import queue as _queue
import signal
import threading
import time
import weakref
from typing import List, Optional, Sequence, Tuple

from ..core.compiled import CompiledEstimation, CompiledScheme, _as_batch
from ..core.dense import DenseRoutingPlane
from ..exceptions import ParameterError, ServingError
from ..telemetry.registry import MetricsRegistry
from ..telemetry.trace import maybe_span
from . import columnar
from .columnar import RESULT_TRANSPORTS
from .sharding import resolve_policy
from .shared import (
    ArtifactHandle,
    attach_from_init,
    default_transport,
    numpy_available,
)

#: How long ``close()`` waits for workers to drain before terminating.
_JOIN_TIMEOUT = 5.0

#: How long workers get to attach + report ready at pool start.
_READY_TIMEOUT = 60.0

#: Every pool not yet closed, so interpreter shutdown (and only
#: shutdown — the set holds weak refs) can tear down stragglers whose
#: owners never reached ``close()``: no leaked worker processes or shm
#: segments after an uncaught exception unwinds past the pool.
_OPEN_POOLS: "weakref.WeakSet" = weakref.WeakSet()


@atexit.register
def _close_leftover_pools() -> None:  # pragma: no cover - process exit
    for pool in list(_OPEN_POOLS):
        try:
            pool.close()
        except Exception:
            pass


def _portable(exc: BaseException) -> BaseException:
    """An exception safe to ship over the result queue.  ``mp.Queue``
    pickles in a background feeder thread where failures vanish and
    the parent would hang waiting, so the pickle check happens here."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return ServingError(f"worker error (unpicklable "
                            f"{type(exc).__name__}): {exc}")


#: Task-queue control message marking an artifact hot-swap (the other
#: control message is the plain ``None`` shutdown sentinel).
_SWAP = "__swap__"


def _serve_shards(artifact, shm, task_q, result_q) -> None:
    """Serve shard tasks until the ``None`` sentinel.  Every serving
    exception is shipped back as that shard's result — a failing shard
    fails one call, never the worker.

    A ``(_SWAP, swap_id, init)`` control message replaces the served
    artifact in place: the worker attaches the new transport, drops the
    old artifact, closes its old segment mapping and acks with
    ``("swapped", pid, swap_id)``.  The parent enqueues one swap
    message per worker on the shared queue; a worker that already
    handled this ``swap_id`` re-enqueues the message (with a short
    sleep, so it does not immediately steal it back) for a sibling
    still waiting — every worker acks exactly once.

    Returns ``(artifact, shm)`` — the *currently attached* pair, which
    swaps may have changed — so the caller tears down the right one.
    """
    seen_swaps = set()
    while True:
        task = task_q.get()
        if task is None:
            return artifact, shm
        if task[0] is _SWAP or task[0] == _SWAP:
            _tag, swap_id, init = task
            if swap_id in seen_swaps:
                task_q.put(task)
                time.sleep(0.002)
                continue
            seen_swaps.add(swap_id)
            try:
                new_artifact, new_shm = attach_from_init(init)
            except BaseException as exc:
                result_q.put(("swap-err", os.getpid(),
                              (swap_id, _portable(exc))))
                continue
            old_shm = shm
            # Drop the old artifact before closing its segment: its
            # zero-copy arrays are views into the mapping.
            artifact, shm = new_artifact, new_shm
            del new_artifact
            if old_shm is not None:
                try:
                    old_shm.close()
                except BufferError:  # pragma: no cover - stray view
                    pass
            result_q.put(("swapped", os.getpid(), swap_id))
            continue
        call_id, shard_id, method, pairs, kwargs, codec = task
        try:
            out = getattr(artifact, method)(pairs, **kwargs)
            if codec == "columnar":
                out = columnar.encode_result(out)
            result_q.put(("ok", (call_id, shard_id), out))
        except BaseException as exc:
            result_q.put(("err", (call_id, shard_id), _portable(exc)))
        del task, pairs


def _worker_main(init, task_q, result_q) -> None:
    """Worker body: attach the shared artifact once, report readiness,
    serve until the sentinel, then tear the mapping down in dependency
    order (artifact first — its zero-copy arrays are views into the
    segment — then the segment; the parent owns the unlink)."""
    # The parent owns shutdown: on Ctrl-C the whole foreground process
    # group gets SIGINT, and workers dying mid-teardown with
    # KeyboardInterrupt tracebacks would race the parent's own
    # close() (sentinels, joins, shm unlink).  Workers ignore the
    # signal; the parent's close() path retires them deterministically.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platform
        pass
    try:
        artifact, shm = attach_from_init(init)
    except BaseException as exc:
        result_q.put(("fatal", os.getpid(), _portable(exc)))
        return
    result_q.put(("ready", os.getpid(), None))
    try:
        # Swaps may have replaced the attached pair; tear down whatever
        # is current at sentinel time.
        artifact, shm = _serve_shards(artifact, shm, task_q, result_q)
    finally:
        del artifact
        if shm is not None:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - stray view alive
                pass


class RouterPool:
    """Serve ``route_many``/``estimate_many`` from N worker processes
    sharing one compiled artifact.

    >>> with RouterPool(compiled, workers=4) as pool:
    ...     routes = pool.route_many(pairs)      # == compiled.route_many(pairs)

    Calls are thread-safe but serialized: one batch is in flight at a
    time (parallelism lives *inside* the batch); multi-threaded
    callers queue up on an internal lock.

    Parameters
    ----------
    artifact:
        A :class:`CompiledScheme`, :class:`DenseRoutingPlane` or
        :class:`CompiledEstimation`.
        Routing pools answer :meth:`route_many`, estimation pools
        :meth:`estimate_many`; asking the wrong kind raises
        :class:`~repro.exceptions.ParameterError`.
    workers:
        Worker process count (default: ``os.cpu_count()``).  ``1`` is a
        real single-worker pool — useful for measuring pool overhead;
        for latency-sensitive small batches call the artifact directly.
    policy:
        Sharding policy name (see ``sharding.SHARDING_POLICIES``).
    start_method:
        ``multiprocessing`` start method (``None`` = platform default).
    transport:
        Artifact transport override (``None`` = auto; see
        ``shared.default_transport``).
    materialize:
        Whether workers copy the attached arrays out into plain Python
        lists (default ``True``).  The tables are small (KBs–MBs) and
        list-backed serving is ~2x faster per route — and, more
        importantly, produces plain-int results that pickle back to
        the parent ~10x cheaper than numpy scalars.  ``False`` keeps
        workers zero-copy on the shared segment: flat memory across
        any number of workers, for artifacts too big to replicate.
    shards_per_worker:
        How many shards each batch is cut into per worker (default 4).
        Workers pull shards off a shared queue, so oversharding both
        load-balances and *streams*: the parent deserializes early
        shards while workers still serve later ones.
    result_transport:
        How shard results travel back: ``"columnar"`` (default)
        struct-packs each shard into flat int64/float64 byte columns
        the parent decodes in one sweep (see ``columnar.py``);
        ``"rows"`` pickles the result objects directly (the legacy
        path, kept for measurement and as a fallback).  Both are
        bit-identical.
    registry:
        Optional :class:`~repro.telemetry.MetricsRegistry` for the
        pool's dispatch/swap instruments (default: a private registry
        per pool).  Two pools may share one registry — series are
        disambiguated by the ``role`` label.
    role:
        Label value for this pool's metric series (default: ``route``
        or ``estimate`` from the artifact kind).
    """

    def __init__(self, artifact, workers: Optional[int] = None,
                 policy: str = "round-robin",
                 start_method: Optional[str] = None,
                 transport: Optional[str] = None,
                 materialize: bool = True,
                 shards_per_worker: int = 4,
                 result_transport: str = "columnar",
                 registry: Optional[MetricsRegistry] = None,
                 role: Optional[str] = None) -> None:
        # State first, so close() is safe from any failure below.
        self._closed = False
        self._procs: List = []
        self._handle: Optional[ArtifactHandle] = None
        self._task_q = None
        self._result_q = None
        self._call_counter = itertools.count()
        self._swap_counter = itertools.count(1)
        self._generation = 0
        #: Set to an error string when a swap left workers on mixed
        #: artifact generations; every serve fails fast from then on.
        self._poisoned: Optional[str] = None
        # One batch in flight at a time: concurrent _serve calls would
        # steal each other's shard results off the shared result queue
        # and deadlock.  Caller threads serialize here; the batch
        # itself is already parallel inside.
        self._serve_lock = threading.Lock()

        if not isinstance(artifact, (CompiledScheme,
                                     DenseRoutingPlane,
                                     CompiledEstimation)):
            raise ParameterError(
                "RouterPool serves compiled artifacts "
                "(CompiledScheme/DenseRoutingPlane/"
                "CompiledEstimation), got "
                f"{type(artifact).__name__}")
        if workers is None:
            workers = os.cpu_count() or 1
        workers = int(workers)
        if workers < 1:
            raise ParameterError(
                f"RouterPool needs at least one worker, got {workers}")
        if shards_per_worker < 1:
            raise ParameterError(
                f"shards_per_worker must be >= 1, got "
                f"{shards_per_worker}")
        if result_transport not in RESULT_TRANSPORTS:
            raise ParameterError(
                f"unknown result transport {result_transport!r}; "
                f"choose from {list(RESULT_TRANSPORTS)}")
        self._result_transport = result_transport
        self._shards_per_worker = int(shards_per_worker)
        self._materialize = materialize
        self._artifact = artifact
        self._policy_name = policy
        self._policy = resolve_policy(policy)
        if role is None:
            role = ("estimate" if isinstance(artifact,
                                             CompiledEstimation)
                    else "route")
        self._role = str(role)
        reg = registry if registry is not None else MetricsRegistry()
        self.registry = reg
        label = {"role": self._role}
        self._m_dispatches = reg.counter(
            "repro_pool_dispatches_total",
            "sharded batches served by the pool",
            labelnames=("role",)).labels(**label)
        self._m_pairs = reg.counter(
            "repro_pool_pairs_total",
            "total pairs served across pool batches",
            labelnames=("role",)).labels(**label)
        self._m_shards = reg.counter(
            "repro_pool_shards_total",
            "shard tasks dispatched to workers",
            labelnames=("role",)).labels(**label)
        self._m_swaps = reg.counter(
            "repro_pool_swaps_total",
            "successful artifact hot-swaps",
            labelnames=("role",)).labels(**label)
        self._m_swap_failures = reg.counter(
            "repro_pool_swap_failures_total",
            "hot-swaps that failed (pool poisoned)",
            labelnames=("role",)).labels(**label)
        self._m_generation = reg.gauge(
            "repro_pool_generation",
            "artifact generation currently serving",
            labelnames=("role",)).labels(**label)
        self._m_workers = reg.gauge(
            "repro_pool_workers", "live worker process count",
            labelnames=("role",)).labels(**label)
        self._m_workers.set_function(
            lambda procs=self._procs: sum(
                1 for p in procs if p.is_alive()))
        try:
            ctx = mp.get_context(start_method)
        except ValueError:
            raise ParameterError(
                f"unknown start method {start_method!r}; this "
                f"platform offers {mp.get_all_start_methods()}"
            ) from None
        self._start_method = ctx.get_start_method()
        self._transport_name = transport or \
            default_transport(self._start_method)
        try:
            self._handle = ArtifactHandle(artifact,
                                          self._transport_name,
                                          self._start_method,
                                          materialize=materialize)
            self._task_q = ctx.Queue()
            self._result_q = ctx.Queue()
            for _ in range(workers):
                proc = ctx.Process(
                    target=_worker_main,
                    args=(self._handle.init, self._task_q,
                          self._result_q),
                    daemon=True)
                proc.start()
                self._procs.append(proc)
            self._await_ready()
        except BaseException:
            self.close()
            raise
        _OPEN_POOLS.add(self)

    # -- introspection -------------------------------------------------
    @property
    def workers(self) -> int:
        return len(self._procs)

    @property
    def policy(self) -> str:
        return self._policy_name

    @property
    def transport(self) -> str:
        return self._transport_name

    @property
    def start_method(self) -> str:
        return self._start_method

    @property
    def result_transport(self) -> str:
        return self._result_transport

    def validate_pairs(self, pairs: Sequence) -> None:
        """The artifact's batch-input prepass, re-exposed so front-ends
        (e.g. the async broker) can fail a request at *submission* time
        with the exact exception any serve path would raise."""
        self._artifact.validate_pairs(pairs)

    @property
    def pids(self) -> List[int]:
        """Worker process ids (empty once closed), for monitoring and
        the lifecycle tests."""
        return [p.pid for p in self._procs]

    @property
    def shm_name(self) -> Optional[str]:
        """Shared-memory segment name (``shm`` transport), for
        lifecycle tests and external monitoring."""
        return self._handle.shm_name if self._handle else None

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> dict:
        """JSON-able counter snapshot read from the pool's registry
        instruments (schema pinned by the telemetry tests)."""
        return {
            "role": self._role,
            "workers": self.workers,
            "generation": self._generation,
            "dispatches": int(self._m_dispatches.value),
            "pairs": int(self._m_pairs.value),
            "shards": int(self._m_shards.value),
            "swaps": int(self._m_swaps.value),
            "swap_failures": int(self._m_swap_failures.value),
        }

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"RouterPool(workers={self.workers}, "
                f"policy={self._policy_name!r}, "
                f"transport={self._transport_name!r}, "
                f"start_method={self._start_method!r}, {state})")

    # -- serving -------------------------------------------------------
    def route_many(self, pairs: Sequence[Tuple[int, int]],
                   max_hops: Optional[int] = None) -> List:
        """Sharded :meth:`CompiledScheme.route_many`; bit-identical,
        input order preserved."""
        kwargs = {} if max_hops is None else {"max_hops": max_hops}
        return self._serve("_route_many_validated", pairs, kwargs,
                           (CompiledScheme, DenseRoutingPlane))

    def estimate_many(self, pairs: Sequence[Tuple[int, int]]
                      ) -> List[float]:
        """Sharded :meth:`CompiledEstimation.estimate_many`."""
        return self._serve("_estimate_many_validated", pairs, {},
                           CompiledEstimation)

    def route_many_tagged(self, pairs: Sequence[Tuple[int, int]],
                          max_hops: Optional[int] = None
                          ) -> Tuple[int, List]:
        """:meth:`route_many` returning ``(generation, results)``.

        The generation is captured under the serve lock, so every
        result in the batch is attributable to exactly that artifact
        generation — the invariant the hot-swap tests pin.
        """
        kwargs = {} if max_hops is None else {"max_hops": max_hops}
        return self._serve("_route_many_validated", pairs, kwargs,
                           (CompiledScheme, DenseRoutingPlane),
                           tag_generation=True)

    def estimate_many_tagged(self, pairs: Sequence[Tuple[int, int]]
                             ) -> Tuple[int, List[float]]:
        """:meth:`estimate_many` returning ``(generation, results)``
        (see :meth:`route_many_tagged`)."""
        return self._serve("_estimate_many_validated", pairs, {},
                           CompiledEstimation, tag_generation=True)

    def _route_many_validated(self, pairs: Sequence[Tuple[int, int]],
                              max_hops: Optional[int] = None) -> List:
        """:meth:`route_many` minus the input prepass — the same
        contract (and name) the compiled artifacts expose, so a
        front-end that already validated at submission (the async
        broker) does not re-validate every fused window."""
        kwargs = {} if max_hops is None else {"max_hops": max_hops}
        return self._serve("_route_many_validated", pairs, kwargs,
                           (CompiledScheme, DenseRoutingPlane),
                           validated=True)

    def _estimate_many_validated(self, pairs: Sequence[Tuple[int, int]]
                                 ) -> List[float]:
        """:meth:`estimate_many` minus the input prepass (see
        :meth:`_route_many_validated`)."""
        return self._serve("_estimate_many_validated", pairs, {},
                           CompiledEstimation, validated=True)

    def _route_many_validated_tagged(
            self, pairs: Sequence[Tuple[int, int]],
            max_hops: Optional[int] = None) -> Tuple[int, List]:
        """Pre-validated + generation-tagged serve — what the async
        broker dispatches fused windows through, so each window is
        attributed to the artifact generation that actually served it."""
        kwargs = {} if max_hops is None else {"max_hops": max_hops}
        return self._serve("_route_many_validated", pairs, kwargs,
                           (CompiledScheme, DenseRoutingPlane),
                           validated=True, tag_generation=True)

    def _estimate_many_validated_tagged(
            self, pairs: Sequence[Tuple[int, int]]
    ) -> Tuple[int, List[float]]:
        """Estimation sibling of :meth:`_route_many_validated_tagged`."""
        return self._serve("_estimate_many_validated", pairs, {},
                           CompiledEstimation, validated=True,
                           tag_generation=True)

    def _serve(self, method: str, pairs: Sequence, kwargs: dict,
               required_cls, validated: bool = False,
               tag_generation: bool = False) -> List:
        if self._closed:
            raise ServingError(
                f"cannot call {method} on a closed RouterPool")
        if self._poisoned is not None:
            raise ServingError(self._poisoned)
        # Fail fast on a degraded pool: surviving workers *could* steal
        # a dead sibling's shards off the shared queue, but serving at
        # reduced capacity silently is worse than telling the caller.
        self._check_liveness()
        if not isinstance(self._artifact, required_cls):
            wanted = "/".join(
                c.__name__ for c in (
                    required_cls if isinstance(required_cls, tuple)
                    else (required_cls,)))
            raise ParameterError(
                f"{method} needs a {wanted}; this pool "
                f"serves a {type(self._artifact).__name__}")
        # Same validator, parent-side, *before* any dispatch: identical
        # exceptions to the single-process path, and workers only ever
        # see well-formed shards — which is why dispatch goes to the
        # ``*_validated`` entry points (no re-validation per shard).
        # ``validated=True`` callers already ran this exact prepass
        # (and normalized to plain-int tuples) at their own boundary.
        if not validated:
            pairs = _as_batch(pairs)
            self._artifact.validate_pairs(pairs)
            # Normalize to plain-int tuples before sharding: an exotic
            # pair object that validates but cannot pickle would
            # otherwise die silently in the task queue's feeder thread
            # and hang the call — and plain ints pickle cheapest.
            index = operator.index
            pairs = [(index(u), index(v)) for u, v in pairs]
        if len(pairs) == 0:
            return (self._generation, []) if tag_generation else []
        with self._serve_lock:
            # Re-check under the lock: close() (and swap failure) tear
            # down while *holding* it, so a call that raced past the
            # fast checks above and then won the lock afterwards must
            # not touch the dismantled queues.
            if self._closed:
                raise ServingError(
                    f"cannot call {method} on a closed RouterPool")
            if self._poisoned is not None:
                raise ServingError(self._poisoned)
            results = self._dispatch(method, pairs, kwargs)
            if tag_generation:
                # Captured under the lock: swaps serialize on it, so
                # the whole batch was served by exactly this
                # generation.
                return (self._generation, results)
            return results

    def _dispatch(self, method: str, pairs: Sequence,
                  kwargs: dict) -> List:
        num_shards = len(self._procs) * self._shards_per_worker
        shards = [idxs for idxs in
                  self._policy(pairs, num_shards) if idxs]
        call_id = next(self._call_counter)
        self._m_dispatches.inc()
        self._m_pairs.inc(len(pairs))
        self._m_shards.inc(len(shards))
        codec = self._result_transport
        for shard_id, idxs in enumerate(shards):
            self._task_q.put((call_id, shard_id, method,
                              [pairs[i] for i in idxs], kwargs, codec))
        results: List = [None] * len(pairs)
        errors = {}
        outstanding = len(shards)
        while outstanding:
            tag, key, payload = self._next_result()
            if tag in ("ready", "fatal"):  # late startup noise
                continue
            got_call, shard_id = key
            if got_call != call_id:  # stale shard from an aborted call
                continue
            outstanding -= 1
            if tag == "err":
                errors[shard_id] = payload
            else:
                if codec == "columnar":
                    payload = columnar.decode_result(payload)
                for i, res in zip(shards[shard_id], payload):
                    results[i] = res
        if errors:
            # Deterministic pick: the failing shard holding the
            # earliest input positions (shards are emitted in order).
            raise errors[min(errors)]
        return results

    def _next_result(self):
        while True:
            try:
                return self._result_q.get(timeout=0.25)
            except _queue.Empty:
                self._check_liveness()

    def _check_liveness(self) -> None:
        dead = [p for p in self._procs if not p.is_alive()]
        if dead:
            codes = ", ".join(f"pid {p.pid} exit {p.exitcode}"
                              for p in dead)
            raise ServingError(
                f"{len(dead)} pool worker(s) died while serving "
                f"({codes}); close the pool and open a new one")

    def _await_ready(self) -> None:
        pending = len(self._procs)
        deadline = time.monotonic() + _READY_TIMEOUT
        while pending:
            try:
                tag, _who, info = self._result_q.get(timeout=0.25)
            except _queue.Empty:
                self._check_liveness()
                if time.monotonic() > deadline:  # pragma: no cover
                    raise ServingError(
                        "pool workers failed to start in time")
                continue
            if tag == "fatal":
                raise ServingError(
                    "pool worker failed to attach the shared "
                    "artifact") from info
            if tag == "ready":
                pending -= 1

    # -- hot swap ------------------------------------------------------
    @property
    def generation(self) -> int:
        """Artifact generation counter: ``0`` for the artifact the pool
        opened with, ``+1`` per successful :meth:`swap`."""
        return self._generation

    def swap(self, artifact, parent_span=None) -> float:
        """Atomically replace the served artifact in every worker.

        Returns the swap latency in seconds.  The swap serializes with
        serving on the pool's one-batch-at-a-time lock, which is the
        whole zero-downtime argument: any batch dispatched before the
        swap completes entirely on the old artifact, any batch after
        it entirely on the new one — no batch ever sees both, and
        :meth:`route_many_tagged` exposes which generation served it.

        The new artifact ships over the pool's transport, except
        ``inherit`` pools: fork-time inheritance cannot reach workers
        that already exist, so swaps fall back to ``shm``/``pickle``
        (attach-time only; serving stays as materialized as before).
        Once every worker acks, the old transport is released (the old
        shared-memory segment unlinks) and the generation counter
        bumps.

        A worker failing to attach mid-swap leaves the pool on mixed
        generations; it is **poisoned** — every later call raises
        :class:`~repro.exceptions.ServingError` — and must be closed.
        """
        if self._closed:
            raise ServingError("cannot swap a closed RouterPool")
        if self._poisoned is not None:
            raise ServingError(self._poisoned)
        if not isinstance(artifact, (CompiledScheme,
                                     DenseRoutingPlane,
                                     CompiledEstimation)):
            raise ParameterError(
                "RouterPool.swap takes a compiled artifact "
                "(CompiledScheme/DenseRoutingPlane/"
                "CompiledEstimation), got "
                f"{type(artifact).__name__}")
        routing = (CompiledScheme, DenseRoutingPlane)
        if isinstance(artifact, routing) != \
                isinstance(self._artifact, routing):
            raise ParameterError(
                f"cannot swap a {type(artifact).__name__} into a "
                f"pool serving a {type(self._artifact).__name__}: "
                "the route/estimate surface would change under the "
                "callers")
        transport = self._transport_name
        if transport == "inherit":
            transport = "shm" if numpy_available() else "pickle"
        swap_span = maybe_span(
            "pool.swap", parent=parent_span,
            attrs={"role": self._role, "workers": len(self._procs),
                   "transport": transport})
        start = time.perf_counter()
        with self._serve_lock:
            if self._closed:
                raise ServingError("cannot swap a closed RouterPool")
            self._check_liveness()
            new_handle = ArtifactHandle(artifact, transport,
                                        self._start_method,
                                        materialize=self._materialize)
            # One rebind span per worker, finished as its ack arrives:
            # the parent-side observation of each worker's re-attach
            # window (enqueue of the swap message to that pid's ack).
            rebind_spans = {p.pid: swap_span.child(
                "pool.rebind", {"pid": p.pid}) for p in self._procs}
            try:
                swap_id = next(self._swap_counter)
                for _ in self._procs:
                    self._task_q.put((_SWAP, swap_id, new_handle.init))
                acked = set()
                while len(acked) < len(self._procs):
                    tag, who, payload = self._next_result()
                    if tag == "swapped" and payload == swap_id:
                        acked.add(who)
                        span = rebind_spans.pop(who, None)
                        if span is not None:
                            span.finish()
                    elif tag == "swap-err" and payload[0] == swap_id:
                        span = rebind_spans.pop(who, None)
                        if span is not None:
                            span.finish(error="attach-failed")
                        raise ServingError(
                            f"worker pid {who} failed to attach the "
                            "new artifact during swap"
                        ) from payload[1]
            except BaseException as exc:
                self._poisoned = (
                    "RouterPool is poisoned: a hot swap failed midway "
                    f"({exc}); workers may serve mixed artifact "
                    "generations — close the pool")
                self._m_swap_failures.inc()
                for span in rebind_spans.values():
                    span.finish(error="swap-aborted")
                swap_span.finish(error=type(exc).__name__)
                new_handle.close()
                raise
            old_handle, self._handle = self._handle, new_handle
            old_handle.close()
            self._artifact = artifact
            self._generation += 1
            self._m_swaps.inc()
            self._m_generation.set(self._generation)
        latency = time.perf_counter() - start
        swap_span.finish(generation=self._generation,
                         swap_latency_s=round(latency, 6))
        return latency

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Deterministic shutdown; idempotent, exception-safe.

        Sentinels every worker, joins with a timeout, escalates to
        ``terminate``/``kill`` for stragglers, drains and closes both
        queues, then releases the transport (unlinking the shared
        memory segment).  After ``close()``,
        ``multiprocessing.active_children()`` contains none of the
        pool's workers and the shm name no longer resolves.

        ``close()`` serializes with in-flight serving: it marks the
        pool closed (new calls fail fast), then waits on the serve
        lock, so a batch already dispatched completes — results,
        errors and all — before any queue or worker is torn down.  It
        used to race that dispatch and could yank the queues out from
        under a caller mid-batch.
        """
        if self._closed:
            return
        self._closed = True
        _OPEN_POOLS.discard(self)
        with self._serve_lock:
            self._teardown()

    def _teardown(self) -> None:
        if self._task_q is not None:
            for _ in self._procs:
                try:
                    self._task_q.put(None)
                except Exception:  # pragma: no cover - queue torn down
                    break
        deadline = time.monotonic() + _JOIN_TIMEOUT
        for proc in self._procs:
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
            if proc.is_alive():  # pragma: no cover - hard hang
                proc.kill()
                proc.join(timeout=1.0)
        for q in (self._task_q, self._result_q):
            if q is None:
                continue
            try:
                while True:
                    q.get_nowait()
            except Exception:
                pass
            try:
                q.close()
                # Never join_thread() here: with the workers gone there
                # is no reader, so a feeder thread still flushing large
                # buffered shards into the full pipe would block it —
                # and this close() — forever.  Dropping in-flight data
                # is exactly right at shutdown.
                q.cancel_join_thread()
            except Exception:  # pragma: no cover
                pass
        self._task_q = self._result_q = None
        if self._handle is not None:
            self._handle.close()
        for proc in self._procs:
            try:
                proc.close()
            except Exception:  # pragma: no cover
                pass
        self._procs = []

    def __enter__(self) -> "RouterPool":
        return self

    def __exit__(self, *_exc) -> bool:
        self.close()
        return False

    def __del__(self):  # pragma: no cover - safety net only
        try:
            self.close()
        except Exception:
            pass
