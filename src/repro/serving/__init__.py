"""Sharded query serving: process-parallel batches over one shared
compiled artifact.  See ``README.md`` in this directory for the
architecture and :class:`RouterPool` for the API."""

from .columnar import RESULT_TRANSPORTS
from .pool import RouterPool
from .sharding import (
    SHARDING_POLICIES,
    available_policies,
    shard_round_robin,
    shard_source_hash,
)
from .shared import TRANSPORTS, default_transport

__all__ = [
    "RouterPool",
    "RESULT_TRANSPORTS",
    "SHARDING_POLICIES",
    "available_policies",
    "shard_round_robin",
    "shard_source_hash",
    "TRANSPORTS",
    "default_transport",
]
