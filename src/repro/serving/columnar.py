"""Columnar result transport: struct-packed shard results.

The ROADMAP's named lever for the pool's remaining serial cost: with
the ``rows`` transport every worker pickles a ``List[CompiledRoute]``
— one object graph per route, each dragging a path list — and the
parent pays a per-object unpickle on the hot merge path.  This module
replaces that with **two flat arrays per shard**:

* routes — one ``int64`` stream
  ``[source, target, center, level, path_len, *path]`` per route
  (``center`` is ``-1`` for a self-route), plus one ``float64`` stream
  of weights;
* estimates — a single ``float64`` stream.

Workers pack with the stdlib ``array`` module (one C-speed ``tobytes``
per shard); the queue then pickles two ``bytes`` objects (a memcpy)
instead of an object graph, and the parent decodes each shard with one
``frombytes`` + ``tolist`` before a single reconstruction sweep.  The
decoded results are plain Python ints/floats, so they are **bit-
identical** to the ``rows`` transport — ``int64`` spans every vertex
id and ``float64`` round-trips route weights exactly — which is why
the whole ``tests/serving`` equivalence grid runs on the columnar
default.  ``RouterPool(result_transport="rows")`` keeps the legacy
pickled path.

The measured merge-cost delta lives in
``benchmarks/results/sharded_serving.json`` (``result_transport``
section).
"""

from __future__ import annotations

import sys
from array import array
from typing import List, Tuple

from ..core.compiled import CompiledRoute
from ..exceptions import ServingError

#: ``RouterPool(result_transport=...)`` choices.
RESULT_TRANSPORTS = ("columnar", "rows")

_INT = "q"
_FLOAT = "d"


def _to_bytes(typecode: str, values) -> bytes:
    arr = array(typecode, values)
    if sys.byteorder == "big":  # pragma: no cover - LE everywhere we run
        arr.byteswap()
    return arr.tobytes()


def _to_list(typecode: str, raw: bytes) -> list:
    arr = array(typecode)
    arr.frombytes(raw)
    if sys.byteorder == "big":  # pragma: no cover
        arr.byteswap()
    return arr.tolist()


# ----------------------------------------------------------------------
# Routes
# ----------------------------------------------------------------------
def encode_routes(routes) -> Tuple[str, bytes, bytes]:
    """Pack a shard's ``List[CompiledRoute]`` into flat byte columns."""
    ints: List[int] = []
    weights: List[float] = []
    for r in routes:
        ints.append(r.source)
        ints.append(r.target)
        ints.append(-1 if r.tree_center is None else r.tree_center)
        ints.append(r.found_level)
        path = r.path
        ints.append(len(path))
        ints.extend(path)
        weights.append(r.weight)
    return ("routes", _to_bytes(_INT, ints), _to_bytes(_FLOAT, weights))


def decode_routes(ints_raw: bytes,
                  weights_raw: bytes) -> List[CompiledRoute]:
    """One ``frombytes``/``tolist`` per column, then a single sweep."""
    ints = _to_list(_INT, ints_raw)
    weights = _to_list(_FLOAT, weights_raw)
    out: List[CompiledRoute] = []
    pos = 0
    total = len(ints)
    for weight in weights:
        if pos + 5 > total:
            raise ServingError(
                "corrupt columnar route payload: truncated header at "
                f"offset {pos}")
        source = ints[pos]
        target = ints[pos + 1]
        center = ints[pos + 2]
        level = ints[pos + 3]
        path_len = ints[pos + 4]
        pos += 5
        path = ints[pos:pos + path_len]
        if len(path) != path_len:
            raise ServingError(
                "corrupt columnar route payload: path wanted "
                f"{path_len} entries, found {len(path)}")
        pos += path_len
        out.append(CompiledRoute(
            source=source, target=target, path=path, weight=weight,
            tree_center=None if center < 0 else center,
            found_level=level))
    if pos != total:
        raise ServingError(
            f"corrupt columnar route payload: {total - pos} trailing "
            "ints after the last route")
    return out


# ----------------------------------------------------------------------
# Estimates
# ----------------------------------------------------------------------
def encode_estimates(values) -> Tuple[str, bytes]:
    """Pack a shard's ``List[float]`` into one float64 column."""
    return ("estimates", _to_bytes(_FLOAT, values))


def decode_estimates(raw: bytes) -> List[float]:
    return _to_list(_FLOAT, raw)


# ----------------------------------------------------------------------
# Tagged dispatch used by the pool
# ----------------------------------------------------------------------
def encode_result(out) -> tuple:
    """Worker side: pack a shard result by shape.  Routing results are
    recognised by the first element being a ``CompiledRoute`` (shards
    are homogeneous); anything else is an estimate column."""
    if out and isinstance(out[0], CompiledRoute):
        return encode_routes(out)
    return encode_estimates(out)


def decode_result(payload: tuple) -> list:
    """Parent side: unpack whatever :func:`encode_result` produced."""
    tag = payload[0]
    if tag == "routes":
        return decode_routes(payload[1], payload[2])
    if tag == "estimates":
        return decode_estimates(payload[1])
    raise ServingError(f"unknown columnar payload tag {tag!r}")
