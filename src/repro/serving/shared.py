"""Artifact transports: getting one compiled artifact into N workers.

The pool pays for the artifact once and shares it; how the bytes reach
the workers depends on what the platform offers:

``shm``
    The parent packs the artifact's flat arrays into one
    ``multiprocessing.shared_memory`` block (via
    ``CompiledScheme.export_buffers``); each worker attaches the block
    by name and rebuilds the artifact with numpy ``frombuffer`` views —
    zero copies of the payload, one physical copy of the tables total,
    any start method.  Without numpy the attach decodes through
    ``array.frombytes`` (one private copy per worker), so ``shm`` is
    only the default when numpy is importable.

``inherit``
    The parent parks the live artifact object in a module global
    before forking; workers find it in their copy-on-write heap.  Zero
    serialization and zero decode, but fork-only — the no-numpy
    default on platforms with ``fork``.

``pickle``
    The export payload rides into each worker inside the spawn
    arguments: one pickled copy per worker.  The last resort
    (``spawn`` start method without numpy) and still strictly better
    than re-reading and re-parsing the ``.cra`` file per worker.

:class:`ArtifactHandle` owns the parent side (and the cleanup — the
parent alone unlinks shared memory); :func:`attach_from_init` is the
worker side.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple

from ..core import compiled as _compiled
from ..core.compiled import attach_artifact
from ..exceptions import ParameterError, ServingError

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - stdlib module since 3.8
    _shared_memory = None

#: Transport names, in auto-selection preference order.
TRANSPORTS = ("shm", "inherit", "pickle")

#: Fork-inherited artifacts, keyed by token.  Written by the parent
#: *before* the workers fork, read by :func:`attach_from_init` in the
#: children, deleted by :meth:`ArtifactHandle.close`.
_INHERITED: Dict[int, object] = {}
_token_counter = itertools.count(1)


def numpy_available() -> bool:
    """One switch for the whole subsystem: defer to the compiled
    module's numpy import so tests that disable numpy there disable
    the zero-copy transport too."""
    return _compiled._np is not None


def default_transport(start_method: str) -> str:
    """shm when numpy can attach zero-copy, else fork inheritance,
    else per-worker pickling (see module docstring)."""
    if numpy_available() and _shared_memory is not None:
        return "shm"
    if start_method == "fork":
        return "inherit"
    return "pickle"


class ArtifactHandle:
    """Parent-side transport state for one pool.

    Builds the picklable ``init`` tuple workers attach from, and owns
    every shared resource behind it: :meth:`close` unlinks the shared
    memory block / drops the inherited global, and is idempotent so
    the pool can call it from both normal shutdown and error paths.
    """

    def __init__(self, artifact, transport: str, start_method: str,
                 materialize: bool = True) -> None:
        if transport not in TRANSPORTS:
            raise ParameterError(
                f"unknown transport {transport!r}; choose from "
                f"{list(TRANSPORTS)}")
        if transport == "inherit" and start_method != "fork":
            raise ParameterError(
                "the 'inherit' transport needs the fork start method; "
                f"this pool uses {start_method!r}")
        if transport == "shm" and _shared_memory is None:
            raise ParameterError(  # pragma: no cover - stdlib present
                "multiprocessing.shared_memory is unavailable; use "
                "the 'inherit' or 'pickle' transport")
        self.transport = transport
        self._shm = None
        self._token: Optional[int] = None
        if transport == "shm":
            buffers = artifact.export_buffers()
            shm = _shared_memory.SharedMemory(
                create=True, size=max(1, buffers.nbytes))
            shm.buf[:buffers.nbytes] = buffers.payload
            self._shm = shm
            self.init: Tuple = ("shm", shm.name, buffers.header(),
                                materialize)
        elif transport == "inherit":
            self._token = next(_token_counter)
            _INHERITED[self._token] = artifact
            self.init = ("inherit", self._token, None, materialize)
        else:
            buffers = artifact.export_buffers()
            self.init = ("pickle", buffers.header(), buffers.payload,
                         materialize)

    @property
    def shm_name(self) -> Optional[str]:
        """The shared-memory block's name (``shm`` transport only)."""
        return self._shm.name if self._shm is not None else None

    def close(self) -> None:
        if self._shm is not None:
            shm, self._shm = self._shm, None
            try:
                shm.close()
            finally:
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
        if self._token is not None:
            _INHERITED.pop(self._token, None)
            self._token = None


def attach_from_init(init: Tuple):
    """Worker-side attach: rebuild the serving artifact from an
    :class:`ArtifactHandle` init tuple.

    Returns ``(artifact, shm_or_None)``; the worker must keep the
    segment object alive for the artifact's lifetime (non-materialized
    numpy arrays are views into its mapping) and close it only after
    dropping the artifact.  Attaching registers the segment with the
    resource tracker a second time, which is deliberately left alone:
    every pool worker — forked *or* spawned — inherits the parent's
    tracker (``spawn`` ships the tracker fd in its preparation data),
    whose set-based cache deduplicates the registration, and the
    parent's ``unlink`` removes it exactly once.  A worker-side
    unregister would double-remove and make the tracker log
    ``KeyError`` noise.
    """
    mode, a, b, materialize = init
    if mode == "shm":
        shm = _shared_memory.SharedMemory(name=a)
        return attach_artifact(b, shm.buf, materialize), shm
    if mode == "inherit":
        try:
            return _INHERITED[a], None
        except KeyError:
            raise ServingError(
                "inherit transport: artifact not found in this "
                "process; the pool must fork its workers") from None
    if mode == "pickle":
        return attach_artifact(a, b, materialize), None
    raise ServingError(f"unknown transport init {mode!r}")
