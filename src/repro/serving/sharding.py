"""Sharding policies: how one batch splits across pool workers.

A policy is a pure function ``(pairs, num_shards) -> [index_list, ...]``
returning, for each shard, the positions of the queries it serves.  The
pool merges worker results back *by those indices*, so any partition is
correct — the batch methods are per-query deterministic, which is what
makes the whole pool bit-identical to single-process serving.  Policies
therefore only differ in balance and locality:

``round-robin``
    Query ``i`` goes to shard ``i mod W``.  Near-perfect balance for
    any input distribution; the default.

``source-hash``
    Shard by a mixed hash of the *source* vertex, so all queries from
    one source travel in one shard — served contiguously by a single
    worker per batch, the shape to pick when batches are per-user
    bursts.  Balance depends on the source distribution.  Note the
    affinity is per *batch*, not per pool lifetime: workers pull
    shards off a shared queue, so the same source may be served by
    different workers across batches.

Policies must be deterministic across processes (no salted ``hash()``),
because the equivalence harness replays the same partition on both
sides of the fork.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from ..exceptions import ParameterError

_MASK64 = (1 << 64) - 1


def _mix(x: int) -> int:
    """splitmix64 finalizer: deterministic, well-distributed 64-bit mix
    (``hash(int)`` is identity, which would turn ``source % W`` into a
    striping pattern correlated with vertex ids)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def shard_round_robin(pairs: Sequence, num_shards: int
                      ) -> List[List[int]]:
    """Deal queries round-robin: query ``i`` -> shard ``i mod W``."""
    shards: List[List[int]] = [[] for _ in range(num_shards)]
    for i in range(len(pairs)):
        shards[i % num_shards].append(i)
    return shards


def shard_source_hash(pairs: Sequence, num_shards: int
                      ) -> List[List[int]]:
    """Shard by hashed source vertex: one source, one shard."""
    shards: List[List[int]] = [[] for _ in range(num_shards)]
    for i, pair in enumerate(pairs):
        shards[_mix(int(pair[0])) % num_shards].append(i)
    return shards


#: Policy name -> partition function; CLI ``--policy`` choices.
SHARDING_POLICIES: Dict[str, Callable[[Sequence, int], List[List[int]]]] \
    = {
        "round-robin": shard_round_robin,
        "source-hash": shard_source_hash,
    }


def available_policies() -> List[str]:
    return sorted(SHARDING_POLICIES)


def resolve_policy(name: str) -> Callable[[Sequence, int],
                                          List[List[int]]]:
    try:
        return SHARDING_POLICIES[name]
    except KeyError:
        raise ParameterError(
            f"unknown sharding policy {name!r}; choose from "
            f"{available_policies()}") from None
