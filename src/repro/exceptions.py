"""Exception hierarchy for the ``repro`` library.

All library-raised errors derive from :class:`ReproError`, so callers can
catch one base class at an API boundary while tests can assert on the
specific subclass.
"""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class GraphError(ReproError):
    """Raised for structurally invalid graphs or graph operations."""


class DisconnectedGraphError(GraphError):
    """Raised when an algorithm requires a connected graph but got one
    with more than one component."""


class InvalidWeightError(GraphError):
    """Raised when an edge weight is outside ``{1, ..., poly(n)}``.

    The paper (Section 2) assumes integer polynomial weights so that a
    weight fits in a single ``O(log n)``-bit message word.
    """


class SimulationError(ReproError):
    """Raised when the CONGEST simulator is driven incorrectly
    (e.g. a node program emits a message to a non-neighbor)."""


class CapacityError(SimulationError):
    """Raised when a single message exceeds the per-round link capacity."""


class SchemeError(ReproError):
    """Raised for routing-scheme construction or protocol violations."""


class RoutingLoopError(SchemeError):
    """Raised when the routing protocol fails to make progress
    (exceeds the hop budget for a single packet)."""


class HopBudgetError(SchemeError):
    """Raised when a *caller-supplied* ``max_hops`` budget runs out
    before the packet reaches its target.

    Distinct from the plain :class:`SchemeError` the serve paths raise
    when the default budget (``4n + 4``, which no correct artifact can
    exceed) runs out: that one means the artifact is broken, this one
    means the caller's budget was simply too small — retry with a
    larger ``max_hops``."""


class ArtifactError(SchemeError):
    """Raised when a compiled-scheme artifact is malformed: bad magic,
    unsupported format version, truncated payload, or the wrong kind
    (routing vs estimation) for the requested loader."""


class ServingError(ReproError):
    """Raised when the sharded serving pool is driven incorrectly or
    loses a worker: serving on a closed pool, a worker that dies or
    fails to attach the shared artifact, or an unusable transport for
    the configured start method."""


class ProtocolError(ServingError):
    """Raised for malformed traffic-server frames: bad or oversized
    length prefixes, non-UTF8 payloads, unknown ops, odd pair arity,
    or batches beyond the per-request limit.  The server answers these
    with a typed ``ERR`` frame instead of dying."""


class HopsetError(ReproError):
    """Raised when a hopset fails validation or is used inconsistently."""


class ParameterError(ReproError):
    """Raised for invalid algorithm parameters (e.g. ``k < 1``)."""
